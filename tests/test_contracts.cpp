// Death tests for the debug contract subsystem (common/contracts.hpp).
//
// One death test per instrumented subsystem proves the ZH_ASSERT /
// ZH_DCHECK_BOUNDS instrumentation is live: each test violates an invariant
// the hot path checks and expects the process to abort with a "contract
// violated" report. In configurations where contracts are compiled out
// (Release/RelWithDebInfo without sanitizers) the tests skip.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "bqtree/bitstream.hpp"
#include "cluster/comm.hpp"
#include "common/contracts.hpp"
#include "core/histogram.hpp"
#include "core/step2_pairing.hpp"
#include "core/step3_aggregate.hpp"
#include "device/device.hpp"
#include "device/thread_pool.hpp"
#include "grid/morton.hpp"

namespace zh {
namespace {

constexpr char kContractMsg[] = "contract violated";

class ContractDeath : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!contracts_enabled()) {
      GTEST_SKIP() << "contracts compiled out in this configuration";
    }
    // Worker threads of the global pool (and rank threads below) make the
    // default fork-based death test unreliable; clone-and-exec instead.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

TEST_F(ContractDeath, EnabledMatchesBuildConfiguration) {
#if ZH_ENABLE_CONTRACTS
  EXPECT_TRUE(contracts_enabled());
#else
  EXPECT_FALSE(contracts_enabled());
#endif
}

// bqtree: a BQ-Tree decoder asking for more bits than the 32-bit
// accumulator holds is a codec bug, not a data error.
TEST_F(ContractDeath, BitReaderRejectsOverwideRead) {
  const std::vector<std::uint8_t> bytes(16, 0xAB);
  EXPECT_DEATH(
      {
        BitReader reader(bytes);
        (void)reader.get_bits(33);
      },
      kContractMsg);
}

// grid: Morton coordinates above 16 bits would silently alias a smaller
// cell after the spread; the encode contract catches the overflow.
TEST_F(ContractDeath, MortonEncodeRejectsWideCoordinates) {
  EXPECT_DEATH((void)morton_encode(0x10000u, 0u), kContractMsg);
  EXPECT_DEATH((void)morton_encode(0u, 0x10000u), kContractMsg);
}

// device: posting an empty std::function would raise bad_function_call on
// a worker thread and take the whole pool down later; the contract moves
// the failure to the call site.
TEST_F(ContractDeath, ThreadPoolRejectsEmptyTask) {
  EXPECT_DEATH(
      {
        ThreadPool pool(1);
        pool.post(std::function<void()>{});
      },
      kContractMsg);
}

// cluster: receiving from a rank outside the cluster can never be
// satisfied -- without the contract the rank thread blocks forever.
TEST_F(ContractDeath, CommRejectsRecvFromNonexistentRank) {
  EXPECT_DEATH(
      run_cluster(2,
                  [](Communicator& comm) {
                    if (comm.rank() == 0) {
                      (void)comm.recv_bytes(/*src=*/7, /*tag=*/0);
                    }
                  }),
      kContractMsg);
}

// core: a Step-3 dispatch table referencing a tile row that Step 1 never
// produced reads a foreign histogram -- exactly the §III.B partition
// corruption the contracts exist to catch.
TEST_F(ContractDeath, Step3RejectsTileIdOutsideHistogramSet) {
  EXPECT_DEATH(
      {
        Device device(DeviceProfile::host());
        HistogramSet tile_hist(2, 8);
        HistogramSet poly_hist(1, 8);
        PolygonTileGroups inside;
        inside.pid_v = {0};
        inside.num_v = {1};
        inside.pos_v = {0};
        inside.tid_v = {5};  // only tiles 0 and 1 exist
        aggregate_inside_tiles(device, inside, tile_hist, poly_hist);
      },
      kContractMsg);
}

// core/histogram: groups x bins products that wrap size_t must abort
// rather than quietly allocating a truncated table.
TEST_F(ContractDeath, HistogramSetRejectsSizeOverflow) {
  EXPECT_DEATH(
      {
        HistogramSet h;
        h.reset((std::size_t{1} << 62) + 1, 4);
      },
      kContractMsg);
}

}  // namespace
}  // namespace zh
