// Cluster substrate and multi-rank zonal runs (DESIGN.md invariant 6):
// merged multi-rank results equal the single-device result for any rank
// count, and partitions tile-align, cover, and stay disjoint.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "cluster/comm.hpp"
#include "cluster/partition.hpp"
#include "core/baseline.hpp"
#include "core/cluster_driver.hpp"
#include "data/county_synth.hpp"
#include "data/dem_synth.hpp"
#include "test_util.hpp"

namespace zh {
namespace {

TEST(Comm, PointToPointAndTags) {
  run_cluster(3, [](Communicator& comm) {
    if (comm.rank() == 0) {
      const std::vector<std::uint32_t> a = {1, 2, 3};
      const std::vector<std::uint32_t> b = {9};
      comm.send<std::uint32_t>(1, /*tag=*/5, a);
      comm.send<std::uint32_t>(1, /*tag=*/6, b);
    } else if (comm.rank() == 1) {
      // Receive out of order: tag matching must pick the right message.
      const auto b = comm.recv<std::uint32_t>(0, 6);
      const auto a = comm.recv<std::uint32_t>(0, 5);
      EXPECT_EQ(b, (std::vector<std::uint32_t>{9}));
      EXPECT_EQ(a, (std::vector<std::uint32_t>{1, 2, 3}));
    }
  });
}

TEST(Comm, GatherCollectsInRankOrder) {
  run_cluster(4, [](Communicator& comm) {
    const std::vector<std::uint32_t> mine = {comm.rank() * 10u};
    const auto all = comm.gather<std::uint32_t>(0, mine);
    if (comm.rank() == 0) {
      ASSERT_EQ(all.size(), 4u);
      for (RankId r = 0; r < 4; ++r) {
        EXPECT_EQ(all[r], (std::vector<std::uint32_t>{r * 10u}));
      }
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST(Comm, ReduceSumsElementwise) {
  run_cluster(5, [](Communicator& comm) {
    const std::vector<std::uint64_t> mine = {comm.rank() + 1ull, 100ull};
    const auto sum = comm.reduce_sum<std::uint64_t>(2, mine);
    if (comm.rank() == 2) {
      EXPECT_EQ(sum, (std::vector<std::uint64_t>{15, 500}));
    } else {
      EXPECT_TRUE(sum.empty());
    }
  });
}

TEST(Comm, BarrierSynchronizesPhases) {
  std::atomic<int> phase1{0};
  std::atomic<bool> ok{true};
  run_cluster(4, [&](Communicator& comm) {
    phase1.fetch_add(1);
    comm.barrier();
    if (phase1.load() != 4) ok = false;  // all ranks passed phase 1
    comm.barrier();
  });
  EXPECT_TRUE(ok.load());
}

TEST(Comm, BytesSentAccounting) {
  run_cluster(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      const std::vector<std::uint32_t> payload(100, 1);
      comm.send<std::uint32_t>(1, 0, payload);
      EXPECT_EQ(comm.bytes_sent(), 400u);
    } else {
      (void)comm.recv<std::uint32_t>(0, 0);
      EXPECT_EQ(comm.bytes_sent(), 0u);
    }
  });
}

TEST(Comm, RankExceptionPropagates) {
  EXPECT_THROW(run_cluster(2,
                           [](Communicator& comm) {
                             if (comm.rank() == 1) {
                               throw InvalidArgument("rank failure");
                             }
                           }),
               InvalidArgument);
}

TEST(Partition, WindowsAreTileAlignedDisjointAndCovering) {
  const std::int64_t rows = 230;
  const std::int64_t cols = 170;
  const std::int64_t tile = 16;
  const auto windows = grid_partition(rows, cols, 3, 4, tile);
  ASSERT_EQ(windows.size(), 12u);

  std::int64_t covered = 0;
  std::set<std::pair<std::int64_t, std::int64_t>> origins;
  for (const CellWindow& w : windows) {
    EXPECT_EQ(w.row0 % tile, 0);
    EXPECT_EQ(w.col0 % tile, 0);
    EXPECT_GT(w.rows, 0);
    EXPECT_GT(w.cols, 0);
    covered += w.cell_count();
    EXPECT_TRUE(origins.emplace(w.row0, w.col0).second);
  }
  EXPECT_EQ(covered, rows * cols);

  // Pairwise disjoint.
  for (std::size_t i = 0; i < windows.size(); ++i) {
    for (std::size_t j = i + 1; j < windows.size(); ++j) {
      const CellWindow& a = windows[i];
      const CellWindow& b = windows[j];
      const bool row_overlap =
          a.row0 < b.row0 + b.rows && b.row0 < a.row0 + a.rows;
      const bool col_overlap =
          a.col0 < b.col0 + b.cols && b.col0 < a.col0 + a.cols;
      EXPECT_FALSE(row_overlap && col_overlap);
    }
  }
}

TEST(Partition, SinglePartitionIsWholeRaster) {
  const auto windows = grid_partition(100, 100, 1, 1, 7);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].rows, 100);
  EXPECT_EQ(windows[0].cols, 100);
}

TEST(Partition, RejectsMorePartitionsThanTiles) {
  EXPECT_THROW(grid_partition(10, 10, 3, 1, 10), InvalidArgument);
}

TEST(Partition, RoundRobinBalancesOwners) {
  std::vector<RasterPartition> parts(10);
  assign_round_robin(parts, 4);
  std::vector<int> counts(4, 0);
  for (const auto& p : parts) ++counts[p.owner];
  EXPECT_EQ(counts, (std::vector<int>{3, 3, 2, 2}));
}

class ClusterSweep : public ::testing::TestWithParam<std::size_t> {};

INSTANTIATE_TEST_SUITE_P(Ranks, ClusterSweep,
                         ::testing::Values(1, 2, 3, 5, 8));

TEST_P(ClusterSweep, MergedResultEqualsSingleDeviceRun) {
  const std::size_t ranks = GetParam();

  // Two adjacent rasters (shared border), zones spanning both.
  const DemParams dp{.seed = 17, .max_value = 59};
  std::vector<DemRaster> rasters;
  rasters.push_back(
      generate_dem(96, 64, GeoTransform(0.0, 9.6, 0.1, 0.1), dp));
  rasters.push_back(
      generate_dem(96, 80, GeoTransform(6.4, 9.6, 0.1, 0.1), dp));
  const std::vector<std::pair<int, int>> schemas = {{2, 1}, {2, 2}};

  CountyParams cp;
  cp.seed = 4;
  cp.grid_x = 5;
  cp.grid_y = 4;
  const PolygonSet zones =
      generate_counties(GeoBox{-0.7, -0.7, 15.1, 10.3}, cp);

  ClusterRunConfig cfg;
  cfg.ranks = ranks;
  cfg.zonal = {.tile_size = 16, .bins = 60};
  const ClusterRunResult result =
      run_cluster_zonal(rasters, schemas, zones, cfg);

  // Reference: per-raster single-device zonal, summed.
  HistogramSet expect(zones.size(), 60);
  for (const DemRaster& r : rasters) {
    expect.add(zonal_mbb_filter(r, zones, 60));
  }
  EXPECT_EQ(result.merged, expect);
  EXPECT_GT(result.wall_seconds, 0.0);
  ASSERT_EQ(result.per_rank.size(), ranks);
  ASSERT_EQ(result.rank_seconds.size(), ranks);
  if (ranks > 1) {
    EXPECT_GT(result.comm_bytes, 0u);
  }
}

TEST(ClusterDriver, CompressedModeMatchesRawMode) {
  const DemParams dp{.seed = 23, .max_value = 99};
  std::vector<DemRaster> rasters;
  rasters.push_back(
      generate_dem(64, 64, GeoTransform(0.0, 6.4, 0.1, 0.1), dp));
  const std::vector<std::pair<int, int>> schemas = {{2, 2}};
  const PolygonSet zones = test::random_polygon_set(
      7, GeoBox{0.5, 0.5, 5.9, 5.9}, 6, true);

  ClusterRunConfig raw;
  raw.ranks = 2;
  raw.zonal = {.tile_size = 16, .bins = 100};
  ClusterRunConfig comp = raw;
  comp.compress = true;

  const auto a = run_cluster_zonal(rasters, schemas, zones, raw);
  const auto b = run_cluster_zonal(rasters, schemas, zones, comp);
  EXPECT_EQ(a.merged, b.merged);
  // Compressed mode exercises Step 0 on every rank.
  double decode_time = 0.0;
  for (const StepTimes& t : b.per_rank) decode_time += t.seconds[0];
  EXPECT_GT(decode_time, 0.0);
}

TEST(ClusterDriver, SchemaCountMismatchThrows) {
  std::vector<DemRaster> rasters;
  rasters.emplace_back(10, 10);
  EXPECT_THROW(run_cluster_zonal(rasters, {}, PolygonSet{}, {}),
               InvalidArgument);
}

}  // namespace
}  // namespace zh
