// Baseline cross-validation: the three reference implementations agree
// bit-for-bit on arbitrary inputs (they share cell-center semantics).
#include <gtest/gtest.h>

#include "core/baseline.hpp"
#include "test_util.hpp"

namespace zh {
namespace {

struct Case {
  std::uint32_t seed;
  int polygons;
  bool holes;
};

class BaselineSweep : public ::testing::TestWithParam<Case> {};

INSTANTIATE_TEST_SUITE_P(Workloads, BaselineSweep,
                         ::testing::Values(Case{1, 1, false},
                                           Case{2, 5, false},
                                           Case{3, 9, true},
                                           Case{4, 16, true}));

TEST_P(BaselineSweep, NaiveMbbAndScanlineAgree) {
  const Case param = GetParam();
  const DemRaster raster = test::random_raster(
      80, 70, param.seed, 99, GeoTransform(0.0, 8.0, 0.1, 0.1));
  const PolygonSet polys = test::random_polygon_set(
      param.seed * 101, GeoBox{0.5, 0.5, 6.5, 7.5}, param.polygons,
      param.holes);

  const HistogramSet naive = zonal_naive(raster, polys, 100);
  const HistogramSet mbb = zonal_mbb_filter(raster, polys, 100);
  const HistogramSet scan = zonal_scanline(raster, polys, 100);
  EXPECT_EQ(naive, mbb);
  EXPECT_EQ(naive, scan);
}

TEST(Baseline, SquarePolygonExactCount) {
  // 10x10 unit cells; square over cell centers of a 4x5 block.
  DemRaster raster(10, 10, GeoTransform(0.0, 10.0, 1.0, 1.0));
  for (CellValue& v : raster.cells()) v = 2;
  PolygonSet polys;
  polys.add(Polygon({{{1.1, 2.1}, {6.2, 2.1}, {6.2, 6.2}, {1.1, 6.2}}}));

  const HistogramSet h = zonal_naive(raster, polys, 5);
  // Centers x in {1.5..5.5} (5 cols), y in {2.5..5.5} (4 rows).
  EXPECT_EQ(h.of(0)[2], 20u);
  EXPECT_EQ(h.group_total(0), 20u);
}

TEST(Baseline, OverlappingPolygonsCountIndependently) {
  DemRaster raster(10, 10, GeoTransform(0.0, 10.0, 1.0, 1.0));
  for (CellValue& v : raster.cells()) v = 1;
  PolygonSet polys;
  polys.add(Polygon({{{0.1, 0.1}, {9.9, 0.1}, {9.9, 9.9}, {0.1, 9.9}}}));
  polys.add(Polygon({{{0.1, 0.1}, {9.9, 0.1}, {9.9, 9.9}, {0.1, 9.9}}}));
  const HistogramSet h = zonal_scanline(raster, polys, 3);
  EXPECT_EQ(h.group_total(0), 100u);
  EXPECT_EQ(h.group_total(1), 100u);  // overlap double-counts by design
}

TEST(Baseline, PolygonOutsideRasterYieldsEmptyHistogram) {
  const DemRaster raster = test::random_raster(10, 10, 5, 9);
  PolygonSet polys;
  polys.add(Polygon({{{100, 100}, {101, 100}, {101, 101}}}));
  EXPECT_EQ(zonal_mbb_filter(raster, polys, 10).group_total(0), 0u);
  EXPECT_EQ(zonal_scanline(raster, polys, 10).group_total(0), 0u);
  EXPECT_EQ(zonal_naive(raster, polys, 10).group_total(0), 0u);
}

TEST(Baseline, EmptyRaster) {
  const DemRaster raster(0, 0);
  PolygonSet polys;
  polys.add(Polygon({{{0.5, 0.5}, {1, 0.5}, {1, 1}}}));
  EXPECT_EQ(zonal_naive(raster, polys, 4).total(), 0u);
  EXPECT_EQ(zonal_scanline(raster, polys, 4).total(), 0u);
}

TEST(Baseline, NodataHandledUniformly) {
  DemRaster raster(6, 6, GeoTransform(0.0, 6.0, 1.0, 1.0));
  for (CellValue& v : raster.cells()) v = 3;
  raster.at(2, 2) = 500;
  raster.set_nodata(CellValue{500});
  PolygonSet polys;
  polys.add(Polygon({{{0.1, 0.1}, {5.9, 0.1}, {5.9, 5.9}, {0.1, 5.9}}}));
  const HistogramSet a = zonal_naive(raster, polys, 10);
  const HistogramSet b = zonal_scanline(raster, polys, 10);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.group_total(0), 35u);  // 36 interior centers - 1 nodata
}

}  // namespace
}  // namespace zh
