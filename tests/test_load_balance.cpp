#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/cluster_driver.hpp"
#include "core/load_balance.hpp"
#include "data/county_synth.hpp"
#include "data/dem_synth.hpp"

namespace zh {
namespace {

std::vector<RasterPartition> fake_parts(std::size_t n) {
  std::vector<RasterPartition> parts(n);
  for (std::size_t i = 0; i < n; ++i) {
    parts[i].window = CellWindow{0, 0, 10, 10};
  }
  return parts;
}

TEST(LoadBalance, LptBeatsRoundRobinOnSkewedCosts) {
  // Costs shaped like the paper's edge-partition skew: a few heavy
  // interior partitions, many light edge partitions.
  const std::vector<double> costs = {100, 90, 80, 5, 4, 3, 2, 1, 1, 1,
                                     1,   1,  1, 1, 1, 1};
  auto rr = fake_parts(costs.size());
  assign_round_robin(rr, 4);
  auto lpt = fake_parts(costs.size());
  assign_least_loaded(lpt, 4, costs);

  const double rr_imb = assignment_imbalance(rr, 4, costs);
  const double lpt_imb = assignment_imbalance(lpt, 4, costs);
  EXPECT_LT(lpt_imb, rr_imb);
  EXPECT_GE(lpt_imb, 1.0);
  // LPT is a 4/3-approximation of the optimal makespan; the optimal
  // makespan is bounded below by both the mean load and the heaviest
  // single partition.
  const double total = std::accumulate(costs.begin(), costs.end(), 0.0);
  const double opt_lb =
      std::max(total / 4.0, *std::max_element(costs.begin(), costs.end()));
  const double lpt_makespan = lpt_imb * (total / 4.0);
  EXPECT_LE(lpt_makespan, (4.0 / 3.0) * opt_lb + 1e-9);
}

TEST(LoadBalance, AllRanksUsedWhenPartitionsSuffice) {
  const std::vector<double> costs(10, 1.0);
  auto parts = fake_parts(10);
  assign_least_loaded(parts, 5, costs);
  std::vector<int> counts(5, 0);
  for (const auto& p : parts) ++counts[p.owner];
  for (const int c : counts) EXPECT_EQ(c, 2);
}

TEST(LoadBalance, ImbalanceOfPerfectAssignmentIsOne) {
  const std::vector<double> costs = {2, 2, 2, 2};
  auto parts = fake_parts(4);
  assign_round_robin(parts, 2);
  EXPECT_DOUBLE_EQ(assignment_imbalance(parts, 2, costs), 1.0);
}

TEST(LoadBalance, SizeMismatchThrows) {
  auto parts = fake_parts(3);
  EXPECT_THROW((void)assign_least_loaded(parts, 2, {1.0}), InvalidArgument);
  EXPECT_THROW((void)assignment_imbalance(parts, 2, {1.0}), InvalidArgument);
}

TEST(LoadBalance, AllZeroCostsAreBalancedByDefinition) {
  // Empty coverage (every partition costs nothing) used to return 0/0 =
  // NaN from the imbalance ratio; it is defined as perfectly balanced.
  const std::vector<double> costs(6, 0.0);
  auto parts = fake_parts(6);
  assign_least_loaded(parts, 3, costs);
  const double imb = assignment_imbalance(parts, 3, costs);
  EXPECT_FALSE(std::isnan(imb));
  EXPECT_DOUBLE_EQ(imb, 1.0);
}

TEST(LoadBalance, MoreRanksThanPartitionsLeavesRanksIdle) {
  // 2 partitions across 5 ranks: the mean divides by all 5 ranks, so the
  // best achievable ratio is ranks/partitions = 2.5, not 1.0. LPT must
  // spread the two partitions onto two distinct ranks.
  const std::vector<double> costs = {1.0, 1.0};
  auto parts = fake_parts(2);
  assign_least_loaded(parts, 5, costs);
  EXPECT_NE(parts[0].owner, parts[1].owner);
  EXPECT_LT(parts[0].owner, 5u);
  EXPECT_LT(parts[1].owner, 5u);
  EXPECT_DOUBLE_EQ(assignment_imbalance(parts, 5, costs), 2.5);
}

TEST(LoadBalance, NonFiniteOrNegativeCostsThrow) {
  // NaN poisons min/max_element (unordered comparisons) and a negative
  // cost lets one rank's load sink below zero and soak up every
  // partition; both are precondition violations, not silent misbalances.
  auto parts = fake_parts(3);
  assign_round_robin(parts, 2);
  const std::vector<double> with_nan = {1.0, std::nan(""), 2.0};
  const std::vector<double> with_inf = {1.0, INFINITY, 2.0};
  const std::vector<double> with_neg = {1.0, -0.5, 2.0};
  EXPECT_THROW((void)assign_least_loaded(parts, 2, with_nan), InvalidArgument);
  EXPECT_THROW((void)assign_least_loaded(parts, 2, with_inf), InvalidArgument);
  EXPECT_THROW((void)assign_least_loaded(parts, 2, with_neg), InvalidArgument);
  EXPECT_THROW((void)assignment_imbalance(parts, 2, with_nan),
               InvalidArgument);
  EXPECT_THROW((void)assignment_imbalance(parts, 2, with_inf),
               InvalidArgument);
  EXPECT_THROW((void)assignment_imbalance(parts, 2, with_neg),
               InvalidArgument);
}

TEST(LoadBalance, OwnerOutOfRangeThrowsInsteadOfIndexingPastLoads) {
  auto parts = fake_parts(2);
  parts[0].owner = 0;
  parts[1].owner = 7;  // stale assignment from a wider rank count
  const std::vector<double> costs = {1.0, 1.0};
  EXPECT_THROW((void)assignment_imbalance(parts, 2, costs), InvalidArgument);
}

TEST(LoadBalance, ZeroRanksThrow) {
  auto parts = fake_parts(2);
  const std::vector<double> costs = {1.0, 1.0};
  EXPECT_THROW((void)assign_least_loaded(parts, 0, costs), InvalidArgument);
  EXPECT_THROW((void)assignment_imbalance(parts, 0, costs), InvalidArgument);
}

TEST(LoadBalance, EstimatedCostsReflectPolygonCoverage) {
  // Two partitions of the same size; zones cover only the western one,
  // so its estimated cost must be strictly higher (Step-4 term).
  const GeoTransform t(0.0, 8.0, 0.1, 0.1);  // 80x160 cells over 16x8
  std::vector<RasterPartition> parts;
  parts.push_back({0, CellWindow{0, 0, 80, 80}, 0});
  parts.push_back({0, CellWindow{0, 80, 80, 80}, 0});

  CountyParams cp;
  cp.grid_x = 3;
  cp.grid_y = 3;
  const PolygonSet west_zones =
      generate_counties(GeoBox{0.3, 0.3, 7.7, 7.7}, cp);

  const auto costs =
      estimate_partition_costs(parts, {t}, 8, west_zones);
  ASSERT_EQ(costs.size(), 2u);
  EXPECT_GT(costs[0], costs[1]);
  EXPECT_GT(costs[1], 0.0);  // cell term present even with no zones
}

TEST(LoadBalance, CostBalancedClusterRunGivesIdenticalResult) {
  const DemParams dp{.seed = 31, .max_value = 49};
  std::vector<DemRaster> rasters;
  rasters.push_back(
      generate_dem(96, 96, GeoTransform(0.0, 9.6, 0.1, 0.1), dp));
  const std::vector<std::pair<int, int>> schemas = {{3, 2}};
  CountyParams cp;
  cp.seed = 9;
  cp.grid_x = 4;
  cp.grid_y = 4;
  const PolygonSet zones =
      generate_counties(GeoBox{-0.4, -0.4, 10.0, 10.0}, cp);

  ClusterRunConfig rr;
  rr.ranks = 3;
  rr.zonal = {.tile_size = 16, .bins = 50};
  ClusterRunConfig lpt = rr;
  lpt.assignment = PartitionAssignment::kCostBalanced;

  const auto a = run_cluster_zonal(rasters, schemas, zones, rr);
  const auto b = run_cluster_zonal(rasters, schemas, zones, lpt);
  EXPECT_EQ(a.merged, b.merged);
}

}  // namespace
}  // namespace zh
