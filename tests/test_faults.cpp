// Fault-injection layer: deterministic FaultPlan decisions, message
// faults (drop/duplicate/reorder/delay) recovered by the comm layer,
// deadline-bounded receives/barriers, dead-rank fail-fast, and
// corruption-detecting container I/O (CRC32 bit-flip fuzz).
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "bqtree/compressed_raster.hpp"
#include "cluster/comm.hpp"
#include "cluster/fault.hpp"
#include "common/crc32.hpp"
#include "io/bq_file.hpp"
#include "io/zgrid.hpp"
#include "test_util.hpp"

namespace zh {
namespace {

using Clock = std::chrono::steady_clock;

// ---------------------------------------------------------------- plans

TEST(FaultPlan, EmptyPlanInjectsNothing) {
  const FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_FALSE(plan.action_for(0, 1, 7, i).any());
  }
}

TEST(FaultPlan, ActionsAreDeterministicPerSeed) {
  FaultPlan plan;
  plan.seed = 42;
  plan.drop_prob = 0.3;
  plan.duplicate_prob = 0.2;
  plan.reorder_prob = 0.25;
  plan.delay_prob = 0.2;

  // Same (src, dst, tag, index) -> identical decision, every time.
  int faulted = 0;
  for (RankId src = 0; src < 3; ++src) {
    for (RankId dst = 0; dst < 3; ++dst) {
      for (std::uint64_t i = 0; i < 64; ++i) {
        const FaultAction a = plan.action_for(src, dst, 5, i);
        const FaultAction b = plan.action_for(src, dst, 5, i);
        EXPECT_EQ(a.drop, b.drop);
        EXPECT_EQ(a.duplicate, b.duplicate);
        EXPECT_EQ(a.reorder, b.reorder);
        EXPECT_EQ(a.delay_ms, b.delay_ms);
        if (a.any()) ++faulted;
        // A dropped message has no other fate.
        if (a.drop) {
          EXPECT_FALSE(a.duplicate || a.reorder || a.delay_ms > 0);
        }
      }
    }
  }
  EXPECT_GT(faulted, 0);

  // A different seed produces a different schedule somewhere.
  FaultPlan other = plan;
  other.seed = 43;
  bool differs = false;
  for (std::uint64_t i = 0; i < 64 && !differs; ++i) {
    differs = plan.action_for(0, 1, 5, i).drop !=
              other.action_for(0, 1, 5, i).drop;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultPlan, ParsesFullSpec) {
  const FaultPlan plan = FaultPlan::parse(
      "seed=7,drop=0.1,dup=0.05,reorder=0.15,delay=0.2,delay_ms=50,"
      "crash=2@partition_done#1");
  EXPECT_EQ(plan.seed, 7u);
  EXPECT_DOUBLE_EQ(plan.drop_prob, 0.1);
  EXPECT_DOUBLE_EQ(plan.duplicate_prob, 0.05);
  EXPECT_DOUBLE_EQ(plan.reorder_prob, 0.15);
  EXPECT_DOUBLE_EQ(plan.delay_prob, 0.2);
  EXPECT_EQ(plan.delay_ms, 50u);
  EXPECT_EQ(plan.crash.rank, 2u);
  EXPECT_EQ(plan.crash.point, CrashPoint::kPartitionDone);
  EXPECT_EQ(plan.crash.occurrence, 1u);
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW((void)FaultPlan::parse("bogus=1"), InvalidArgument);
  EXPECT_THROW((void)FaultPlan::parse("drop"), InvalidArgument);
  EXPECT_THROW((void)FaultPlan::parse("drop=notanumber"), InvalidArgument);
  EXPECT_THROW((void)FaultPlan::parse("crash=1"), InvalidArgument);
  EXPECT_THROW((void)FaultPlan::parse("crash=1@no_such_point"),
               InvalidArgument);
  EXPECT_THROW((void)FaultPlan::parse("abort=no_such_point"),
               InvalidArgument);
  EXPECT_THROW((void)FaultPlan::parse("abort=startup#x"), InvalidArgument);
}

TEST(FaultPlan, ParsesAbortSpec) {
  const FaultPlan plan = FaultPlan::parse("abort=journal_record#2");
  EXPECT_EQ(plan.abort.point, CrashPoint::kJournalRecord);
  EXPECT_EQ(plan.abort.occurrence, 2u);
  EXPECT_FALSE(plan.empty());  // an abort alone is a non-empty plan

  const FaultPlan bare = FaultPlan::parse("abort=partition_done");
  EXPECT_EQ(bare.abort.point, CrashPoint::kPartitionDone);
  EXPECT_EQ(bare.abort.occurrence, 0u);

  EXPECT_EQ(to_string(CrashPoint::kJournalRecord), "journal_record");
}

/// Asserts the COMPLETE error text: problem, byte offset of the failing
/// token, the full spec, and the grammar -- so a user (and a test) can
/// locate a typo in a long spec without counting commas.
void expect_parse_error(std::string_view spec, std::size_t offset,
                        std::string_view problem) {
  const std::string expect = detail::format_parts(
      "fault plan: ", problem, " at byte ", offset, " of '", spec, "' (",
      FaultPlan::kGrammar, ")");
  try {
    (void)FaultPlan::parse(spec);
    FAIL() << "spec '" << spec << "' was not rejected";
  } catch (const InvalidArgument& e) {
    EXPECT_EQ(e.what(), expect);
  }
}

TEST(FaultPlan, ParseErrorsPinpointByteOffsetAndGrammar) {
  expect_parse_error("bogus=1", 0, "unknown key 'bogus'");
  expect_parse_error("drop=0.1,oops", 9, "expected key=value, got 'oops'");
  expect_parse_error("drop=1.5", 5,
                     "key 'drop' needs a probability in [0,1], got '1.5'");
  expect_parse_error("seed=3,dup=x", 11,
                     "key 'dup' needs a probability in [0,1], got 'x'");
  expect_parse_error("seed=abc", 5,
                     "key 'seed' needs a non-negative integer, got 'abc'");
  expect_parse_error(
      "crash=1", 6,
      "key 'crash' needs <rank>@<point>[#<occurrence>], got '1'");
  expect_parse_error("crash=1@nope", 8, "unknown crash point 'nope'");
  expect_parse_error("abort=nope", 6, "unknown crash point 'nope'");
  expect_parse_error(
      "abort=startup#x", 14,
      "key 'abort occurrence' needs a non-negative integer, got 'x'");
}

// --------------------------------------------------- retry backoff jitter

TEST(FaultPlan, DecorrelatedBackoffIsDeterministicAndBounded) {
  // Decorrelated jitter: each attempt draws uniformly from
  // [base, 3 * previous], keyed by (seed, receiver, src, tag, attempt) --
  // so replays with the same seed reproduce the same retry schedule
  // byte for byte.
  const std::int64_t base = 10;
  std::int64_t prev = base;
  for (std::uint32_t attempt = 0; attempt < 24; ++attempt) {
    const std::int64_t a =
        decorrelated_backoff_ms(7, 0, 2, 101, attempt, base, prev);
    const std::int64_t b =
        decorrelated_backoff_ms(7, 0, 2, 101, attempt, base, prev);
    EXPECT_EQ(a, b) << "attempt " << attempt;  // deterministic
    EXPECT_GE(a, base);
    EXPECT_LE(a, std::max(base, 3 * prev));
    prev = a;
  }
}

TEST(FaultPlan, DecorrelatedBackoffDecorrelatesStreams) {
  // Different receivers, sources, tags, attempts, or seeds must not march
  // in lockstep -- synchronized retry storms are what jitter prevents.
  const std::int64_t base = 10;
  const std::int64_t prev = 1000;  // wide range: collisions unlikely
  const std::int64_t ref = decorrelated_backoff_ms(1, 0, 1, 5, 3, base, prev);
  int differs = 0;
  differs += decorrelated_backoff_ms(2, 0, 1, 5, 3, base, prev) != ref;
  differs += decorrelated_backoff_ms(1, 3, 1, 5, 3, base, prev) != ref;
  differs += decorrelated_backoff_ms(1, 0, 2, 5, 3, base, prev) != ref;
  differs += decorrelated_backoff_ms(1, 0, 1, 6, 3, base, prev) != ref;
  differs += decorrelated_backoff_ms(1, 0, 1, 5, 4, base, prev) != ref;
  EXPECT_GE(differs, 4);  // allow one accidental collision, not a pattern
}

TEST(FaultPlan, DecorrelatedBackoffHandlesDegenerateInputs) {
  // Zero/negative base or previous must still produce a sane wait.
  EXPECT_GE(decorrelated_backoff_ms(1, 0, 1, 5, 0, 0, 0), 1);
  EXPECT_GE(decorrelated_backoff_ms(1, 0, 1, 5, 0, -5, -5), 1);
  const std::int64_t v = decorrelated_backoff_ms(1, 0, 1, 5, 9, 1, 1);
  EXPECT_GE(v, 1);
  EXPECT_LE(v, 3);
}

// ----------------------------------------------------- message faults

TEST(CommFault, DroppedMessagesRecoveredByRetry) {
  ClusterOptions opts;
  opts.faults.seed = 11;
  opts.faults.drop_prob = 1.0;  // every message lost in transit
  run_cluster(2, opts, [](Communicator& comm) {
    if (comm.rank() == 0) {
      const std::vector<std::uint32_t> payload = {1, 2, 3, 4};
      comm.send<std::uint32_t>(1, 7, payload);
    } else {
      // The retry path triggers retransmission of the dropped message.
      const auto got = comm.recv<std::uint32_t>(0, 7);
      EXPECT_EQ(got, (std::vector<std::uint32_t>{1, 2, 3, 4}));
    }
  });
}

TEST(CommFault, DuplicatedMessagesMatchByTag) {
  ClusterOptions opts;
  opts.faults.seed = 5;
  opts.faults.duplicate_prob = 1.0;
  run_cluster(2, opts, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send<std::uint32_t>(1, 1, std::vector<std::uint32_t>{10});
      comm.send<std::uint32_t>(1, 2, std::vector<std::uint32_t>{20});
    } else {
      EXPECT_EQ(comm.recv<std::uint32_t>(0, 2),
                (std::vector<std::uint32_t>{20}));
      EXPECT_EQ(comm.recv<std::uint32_t>(0, 1),
                (std::vector<std::uint32_t>{10}));
      // The duplicates are still there, identical to the originals.
      EXPECT_EQ(comm.recv<std::uint32_t>(0, 1),
                (std::vector<std::uint32_t>{10}));
      EXPECT_EQ(comm.recv<std::uint32_t>(0, 2),
                (std::vector<std::uint32_t>{20}));
    }
  });
}

TEST(CommFault, ReorderedAndDelayedMessagesStillArrive) {
  ClusterOptions opts;
  opts.faults.seed = 3;
  opts.faults.reorder_prob = 1.0;
  opts.faults.delay_prob = 1.0;
  opts.faults.delay_ms = 10;
  run_cluster(2, opts, [](Communicator& comm) {
    if (comm.rank() == 0) {
      for (std::uint32_t i = 0; i < 8; ++i) {
        comm.send<std::uint32_t>(1, static_cast<int>(i),
                                 std::vector<std::uint32_t>{i});
      }
    } else {
      for (std::uint32_t i = 8; i-- > 0;) {
        EXPECT_EQ(comm.recv<std::uint32_t>(0, static_cast<int>(i)),
                  (std::vector<std::uint32_t>{i}));
      }
    }
  });
}

TEST(CommFault, CollectivesSurviveMessageFaultStorm) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    ClusterOptions opts;
    opts.faults.seed = seed;
    opts.faults.drop_prob = 0.3;
    opts.faults.duplicate_prob = 0.2;
    opts.faults.reorder_prob = 0.3;
    opts.faults.delay_prob = 0.2;
    opts.faults.delay_ms = 5;
    run_cluster(4, opts, [](Communicator& comm) {
      const std::vector<std::uint64_t> mine = {comm.rank() + 1ull, 10ull};
      const auto sum = comm.reduce_sum<std::uint64_t>(0, mine);
      if (comm.rank() == 0) {
        EXPECT_EQ(sum, (std::vector<std::uint64_t>{10, 40}));
      }
      const auto all = comm.gather<std::uint64_t>(2, mine);
      if (comm.rank() == 2) {
        ASSERT_EQ(all.size(), 4u);
        for (RankId r = 0; r < 4; ++r) {
          EXPECT_EQ(all[r], (std::vector<std::uint64_t>{r + 1ull, 10ull}));
        }
      }
    });
  }
}

// --------------------------------------------- deadlines and dead ranks

TEST(CommFault, RecvTimesOutOnSilence) {
  run_cluster(2, [](Communicator& comm) {
    if (comm.rank() == 1) {
      std::vector<std::byte> out;
      const Status s =
          comm.recv_bytes(0, 9, Deadline::after_ms(80), out);
      EXPECT_EQ(s.code(), StatusCode::kTimeout);
    }
    comm.barrier();  // keeps rank 0 alive while rank 1 waits
  });
}

TEST(CommFault, RecvFromDeadRankFailsFast) {
  run_cluster(2, [](Communicator& comm) {
    if (comm.rank() == 0) return;  // exits immediately -> marked dead
    const auto start = Clock::now();
    std::vector<std::byte> out;
    const Status s =
        comm.recv_bytes(0, 4, Deadline::after_ms(10000), out);
    EXPECT_EQ(s.code(), StatusCode::kRankDead);
    // Fail-fast: nowhere near the 10 s deadline.
    EXPECT_LT(Clock::now() - start, std::chrono::seconds(5));
  });
}

TEST(CommFault, InFlightMessageFromDeadRankStillReceivable) {
  run_cluster(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send<std::uint32_t>(1, 3, std::vector<std::uint32_t>{77});
      return;  // dies right after sending
    }
    const auto got = comm.recv<std::uint32_t>(0, 3);
    EXPECT_EQ(got, (std::vector<std::uint32_t>{77}));
    EXPECT_TRUE(comm.rank_dead(0) ||
                !comm.rank_dead(0));  // query is always safe
  });
}

TEST(CommFault, BarrierTimesOutWhenARankStaysAway) {
  run_cluster(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      // Never enters the barrier; waits for rank 1's go-ahead instead.
      (void)comm.recv<std::uint32_t>(1, 1);
    } else {
      const Status s = comm.barrier(Deadline::after_ms(60));
      EXPECT_EQ(s.code(), StatusCode::kTimeout);
      comm.send<std::uint32_t>(0, 1, std::vector<std::uint32_t>{1});
    }
  });
}

TEST(CommFault, BarrierReportsDeadRank) {
  ClusterOptions opts;
  run_cluster(2, opts, [](Communicator& comm) {
    if (comm.rank() == 0) return;  // dies; the barrier can never complete
    const Status s = comm.barrier(Deadline::after_ms(10000));
    EXPECT_EQ(s.code(), StatusCode::kRankDead);
  });
}

TEST(CommFault, RecvRejectsMisalignedPayloadWithProvenance) {
  run_cluster(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send_bytes(1, 7, std::vector<std::byte>(3));
    } else {
      std::vector<std::uint32_t> out;
      const Status s =
          comm.recv<std::uint32_t>(0, 7, Deadline::after_ms(5000), out);
      EXPECT_EQ(s.code(), StatusCode::kCorrupt);
      EXPECT_NE(s.message().find("from rank 0"), std::string::npos)
          << s.message();
      EXPECT_NE(s.message().find("tag 7"), std::string::npos)
          << s.message();
      EXPECT_NE(s.message().find("3 bytes"), std::string::npos)
          << s.message();
    }
  });
}

TEST(CommFault, ScriptedCrashPropagatesWhenNotTolerated) {
  ClusterOptions opts;
  opts.faults.crash = {1, CrashPoint::kStartup, 0};
  EXPECT_THROW(run_cluster(2, opts,
                           [](Communicator& comm) {
                             comm.checkpoint(CrashPoint::kStartup);
                           }),
               RankCrash);
}

TEST(CommFault, ToleratedCrashKillsOnlyThatRank) {
  ClusterOptions opts;
  opts.faults.crash = {1, CrashPoint::kStartup, 0};
  opts.tolerate_rank_crash = true;
  run_cluster(2, opts, [](Communicator& comm) {
    comm.checkpoint(CrashPoint::kStartup);
    EXPECT_NE(comm.rank(), 1u);  // rank 1 never gets here
  });
}

// -------------------------------------------------- corruption-detecting I/O

class CorruptIoFault : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("zh_fault_io_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  static std::vector<char> slurp(const std::string& p) {
    std::ifstream is(p, std::ios::binary);
    return {std::istreambuf_iterator<char>(is),
            std::istreambuf_iterator<char>()};
  }

  static void spit(const std::string& p, const std::vector<char>& bytes) {
    std::ofstream os(p, std::ios::binary);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::filesystem::path dir_;
};

TEST_F(CorruptIoFault, Crc32KnownAnswerAndIncremental) {
  const char* msg = "123456789";
  EXPECT_EQ(crc32(msg, 9), 0xCBF43926u);  // IEEE 802.3 check value
  Crc32 inc;
  inc.update(msg, 4);
  inc.update(msg + 4, 5);
  EXPECT_EQ(inc.value(), 0xCBF43926u);
  EXPECT_EQ(crc32(msg, 0), 0u);
}

TEST_F(CorruptIoFault, ZgridDetectsEverySingleBitFlip) {
  const DemRaster r = test::random_raster(6, 5, 21, 4000);
  write_zgrid(path("v2.zgrid"), r);
  const std::vector<char> good = slurp(path("v2.zgrid"));
  ASSERT_FALSE(good.empty());
  // Sanity: the unmodified file round-trips.
  EXPECT_EQ(read_zgrid(path("v2.zgrid")), r);

  for (std::size_t byte = 0; byte < good.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<char> bad = good;
      bad[byte] = static_cast<char>(bad[byte] ^ (1 << bit));
      spit(path("flip.zgrid"), bad);
      EXPECT_THROW((void)read_zgrid(path("flip.zgrid")), IoError)
          << "bit flip at byte " << byte << " bit " << bit
          << " was not detected";
    }
  }
}

TEST_F(CorruptIoFault, BqDetectsEverySingleBitFlip) {
  const DemRaster r = test::random_raster(20, 14, 9, 255);
  write_bq(path("v2.bq"), BqCompressedRaster::encode(r, 8));
  const std::vector<char> good = slurp(path("v2.bq"));
  ASSERT_FALSE(good.empty());
  EXPECT_EQ(read_bq(path("v2.bq")).decode_all(), r);

  for (std::size_t byte = 0; byte < good.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<char> bad = good;
      bad[byte] = static_cast<char>(bad[byte] ^ (1 << bit));
      spit(path("flip.bq"), bad);
      EXPECT_THROW((void)read_bq(path("flip.bq")), IoError)
          << "bit flip at byte " << byte << " bit " << bit
          << " was not detected";
    }
  }
}

TEST_F(CorruptIoFault, ZgridTruncationAtEveryLengthDetected) {
  const DemRaster r = test::random_raster(4, 4, 2, 100);
  write_zgrid(path("full.zgrid"), r);
  const std::vector<char> good = slurp(path("full.zgrid"));
  for (std::size_t len = 0; len < good.size(); ++len) {
    spit(path("trunc.zgrid"),
         std::vector<char>(good.begin(),
                           good.begin() + static_cast<std::ptrdiff_t>(len)));
    EXPECT_THROW((void)read_zgrid(path("trunc.zgrid")), IoError)
        << "truncation to " << len << " bytes was not detected";
  }
}

TEST_F(CorruptIoFault, ZgridRejectsOldVersionWithClearMessage) {
  // Hand-build a version-1 header (pre-checksum format).
  std::vector<char> v1 = {'Z', 'G', 'R', 'D', 1, 0, 0, 0};
  v1.resize(v1.size() + 59, 0);
  spit(path("old.zgrid"), v1);
  try {
    (void)read_zgrid(path("old.zgrid"));
    FAIL() << "version-1 zgrid was not rejected";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
        << e.what();
  }
}

TEST_F(CorruptIoFault, BqRejectsLegacyFormatWithReencodeHint) {
  std::vector<char> legacy = {'Z', 'B', 'Q', '1'};
  legacy.resize(64, 0);
  spit(path("legacy.bq"), legacy);
  try {
    (void)read_bq(path("legacy.bq"));
    FAIL() << "legacy ZBQ1 file was not rejected";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("re-encode"), std::string::npos)
        << e.what();
  }
}

TEST_F(CorruptIoFault, BqRejectsAbsurdTileCountWithoutAllocating) {
  // A valid prefix whose header claims 2^60 tiles must be rejected by the
  // size check, not by attempting the allocation.
  const DemRaster r = test::random_raster(8, 8, 3, 50);
  write_bq(path("tiny.bq"), BqCompressedRaster::encode(r, 8));
  std::vector<char> bytes = slurp(path("tiny.bq"));
  // tile count lives at offset 4 (magic) + 4 (version) + 3*8 + 4*8.
  const std::size_t off = 4 + 4 + 24 + 32;
  ASSERT_LT(off + 8, bytes.size());
  const std::uint64_t absurd = std::uint64_t{1} << 60;
  std::memcpy(bytes.data() + off, &absurd, sizeof(absurd));
  spit(path("absurd.bq"), bytes);
  EXPECT_THROW((void)read_bq(path("absurd.bq")), IoError);
}

}  // namespace
}  // namespace zh
