#include <gtest/gtest.h>

#include "data/conus.hpp"
#include "data/county_synth.hpp"
#include "data/dem_synth.hpp"
#include "geom/pip.hpp"

namespace zh {
namespace {

TEST(DemSynth, DeterministicInSeed) {
  const GeoTransform t(-100.0, 40.0, 0.01, 0.01);
  const DemRaster a = generate_dem(50, 60, t, {.seed = 5});
  const DemRaster b = generate_dem(50, 60, t, {.seed = 5});
  const DemRaster c = generate_dem(50, 60, t, {.seed = 6});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(DemSynth, ValuesWithinRange) {
  const DemParams p{.seed = 1, .max_value = 4999};
  const DemRaster r =
      generate_dem(100, 100, GeoTransform(-90, 35, 0.01, 0.01), p);
  for (const CellValue v : r.cells()) ASSERT_LE(v, p.max_value);
}

TEST(DemSynth, SpatiallyCorrelated) {
  // Neighboring cells must be far more similar than random pairs --
  // the property driving BQ-Tree compressibility.
  const DemRaster r =
      generate_dem(200, 200, GeoTransform(-90, 35, 1.0 / 3600, 1.0 / 3600));
  double neighbor_diff = 0.0;
  double far_diff = 0.0;
  int n = 0;
  for (std::int64_t i = 0; i < 199; ++i) {
    neighbor_diff += std::abs(static_cast<double>(r.at(i, 100)) -
                              static_cast<double>(r.at(i + 1, 100)));
    far_diff += std::abs(static_cast<double>(r.at(i, 10)) -
                         static_cast<double>(r.at(199 - i, 190)));
    ++n;
  }
  EXPECT_LT(neighbor_diff / n, 0.2 * (far_diff / n + 1.0));
}

TEST(DemSynth, BorderConsistencyAcrossAdjacentRasters) {
  // Two rasters meeting at lon -100: elevations are a pure function of
  // geography, so the shared column of cell centers must agree.
  const DemParams params{.seed = 9};
  const GeoTransform left(-101.0, 40.0, 0.01, 0.01);
  const GeoTransform right(-100.0, 40.0, 0.01, 0.01);
  const DemRaster a = generate_dem(50, 100, left, params);
  const DemRaster b = generate_dem(50, 100, right, params);
  for (std::int64_t r = 0; r < 50; ++r) {
    const GeoPoint pa = left.cell_center(r, 99);
    const GeoPoint pb = right.cell_center(r, 0);
    EXPECT_EQ(a.at(r, 99), dem_elevation(pa.x, pa.y, params));
    EXPECT_EQ(b.at(r, 0), dem_elevation(pb.x, pb.y, params));
  }
}

TEST(CountySynth, ProducesRequestedZoneGrid) {
  const GeoBox extent{-10, -10, 10, 10};
  CountyParams p;
  p.grid_x = 5;
  p.grid_y = 4;
  const PolygonSet set = generate_counties(extent, p);
  EXPECT_EQ(set.size(), 20u);
  for (PolygonId id = 0; id < set.size(); ++id) {
    EXPECT_GE(set[id].vertex_count(), 3u);
    EXPECT_TRUE(extent.contains(set[id].mbr()))
        << "zone " << id << " escapes the extent";
  }
}

TEST(CountySynth, DeterministicInSeed) {
  const GeoBox extent{0.5, 0.5, 20, 20};
  CountyParams p;
  p.seed = 42;
  const PolygonSet a = generate_counties(extent, p);
  const PolygonSet b = generate_counties(extent, p);
  ASSERT_EQ(a.size(), b.size());
  for (PolygonId i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].area(), b[i].area());
  }
}

TEST(CountySynth, CoverageIsNearlyExactPartition) {
  // Space-filling property: nearly every sampled point lies in exactly
  // one zone (shared edges are displaced identically from both sides;
  // only snapping slivers may deviate).
  const GeoBox extent{0.5, 0.5, 12.5, 10.5};
  CountyParams p;
  p.grid_x = 6;
  p.grid_y = 5;
  const PolygonSet set = generate_counties(extent, p);

  int exactly_one = 0;
  int total = 0;
  int more_than_two = 0;
  for (int i = 0; i < 120; ++i) {
    for (int j = 0; j < 100; ++j) {
      const GeoPoint pt{extent.min_x + (i + 0.5) * extent.width() / 120,
                        extent.min_y + (j + 0.5) * extent.height() / 100};
      int hits = 0;
      for (PolygonId id = 0; id < set.size(); ++id) {
        hits += point_in_polygon(set[id], pt);
      }
      ++total;
      exactly_one += hits == 1;
      more_than_two += hits > 2;
    }
  }
  EXPECT_GE(exactly_one, total * 99 / 100)
      << exactly_one << "/" << total << " points in exactly one zone";
  EXPECT_EQ(more_than_two, 0);
}

TEST(CountySynth, HolesProduceMultiRingZones) {
  const GeoBox extent{0.5, 0.5, 20, 20};
  CountyParams p;
  p.grid_x = 4;
  p.grid_y = 4;
  p.hole_every = 4;
  const PolygonSet set = generate_counties(extent, p);
  int multi = 0;
  for (PolygonId id = 0; id < set.size(); ++id) {
    multi += set[id].ring_count() > 1;
  }
  EXPECT_EQ(multi, 4);
}

TEST(CountySynth, RejectsBadParams) {
  CountyParams p;
  p.grid_x = 0;
  EXPECT_THROW(generate_counties({0, 0, 1, 1}, p), InvalidArgument);
  p.grid_x = 2;
  p.jitter = 0.6;
  EXPECT_THROW(generate_counties({0, 0, 1, 1}, p), InvalidArgument);
}

TEST(Conus, Table1TotalsMatchThePaper) {
  EXPECT_EQ(conus::table1().size(), 6u);          // 6 rasters
  EXPECT_EQ(conus::total_partitions(), 36);       // 36 partitions
  EXPECT_EQ(conus::total_cells(1), 20'165'760'000LL);  // Table 1 total
}

TEST(Conus, RastersDoNotOverlap) {
  const auto& specs = conus::table1();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    for (std::size_t j = i + 1; j < specs.size(); ++j) {
      const GeoBox a = specs[i].extent();
      const GeoBox b = specs[j].extent();
      const double ox = std::min(a.max_x, b.max_x) -
                        std::max(a.min_x, b.min_x);
      const double oy = std::min(a.max_y, b.max_y) -
                        std::max(a.min_y, b.min_y);
      EXPECT_FALSE(ox > 1e-9 && oy > 1e-9)
          << specs[i].name << " overlaps " << specs[j].name;
    }
  }
}

TEST(Conus, ScalingShrinksQuadratically) {
  const auto& s = conus::table1().front();
  EXPECT_EQ(s.cells_at(1), 900 * s.cells_at(30));
  EXPECT_EQ(conus::total_cells(60),
            conus::total_cells(1) / (60LL * 60LL));
}

TEST(Conus, TileSizeMatchesPaperGeometry) {
  EXPECT_EQ(conus::tile_size_cells(1), 360);   // 0.1 deg at 30 m
  EXPECT_EQ(conus::tile_size_cells(30), 12);
  EXPECT_THROW((void)conus::tile_size_cells(7), InvalidArgument);
  EXPECT_THROW((void)conus::tile_size_cells(3600), InvalidArgument);
}

TEST(Conus, GenerateRasterMatchesSpecDims) {
  const auto& spec = conus::table1()[3];  // 10 x 12 degrees
  const int scale = 120;                  // 30 cells/deg
  const DemRaster r = conus::generate_raster(spec, scale);
  EXPECT_EQ(r.rows(), 10 * 30);
  EXPECT_EQ(r.cols(), 12 * 30);
  const GeoBox e = r.extent();
  EXPECT_NEAR(e.min_x, spec.origin_x, 1e-9);
  EXPECT_NEAR(e.max_y, spec.origin_y, 1e-9);
}

TEST(Conus, CountyLayerSpansTheExtentAndHasMultiRings) {
  const PolygonSet counties = conus::generate_county_layer(40);
  EXPECT_GE(counties.size(), 40u);
  int multi = 0;
  for (PolygonId id = 0; id < counties.size(); ++id) {
    multi += counties[id].ring_count() > 1;
  }
  EXPECT_GT(multi, 0);  // every 10th zone has a hole
  const GeoBox full = conus::full_extent();
  const GeoBox got = counties.extent();
  EXPECT_GT(got.width(), 0.8 * full.width());
  EXPECT_GT(got.height(), 0.8 * full.height());
}

}  // namespace
}  // namespace zh
