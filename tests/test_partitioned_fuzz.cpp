// Partitioned-run equivalence, histogram CSV round-trip and failure
// injection (corrupted inputs must raise IoError, never crash).
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <random>

#include "bqtree/bqtree.hpp"
#include "core/baseline.hpp"
#include "core/pipeline.hpp"
#include "geom/wkt.hpp"
#include "io/histogram_io.hpp"
#include "test_util.hpp"

namespace zh {
namespace {

TEST(Partitioned, EqualsWholeRasterRun) {
  Device dev;
  const DemRaster raster = test::random_raster(
      96, 128, 9, 199, GeoTransform(0.0, 9.6, 0.1, 0.1));
  const PolygonSet zones = test::random_polygon_set(
      13, GeoBox{0.5, 0.5, 12.3, 9.1}, 8, /*holes=*/true);
  const ZonalPipeline pipe(dev, {.tile_size = 16, .bins = 200});

  const ZonalResult whole = pipe.run(raster, zones);
  for (const auto& [pr, pc] :
       {std::pair{1, 1}, std::pair{2, 2}, std::pair{3, 4},
        std::pair{6, 8}}) {
    const ZonalResult parts = pipe.run_partitioned(raster, zones, pr, pc);
    EXPECT_EQ(parts.per_polygon, whole.per_polygon)
        << pr << "x" << pc << " partitions";
    EXPECT_EQ(parts.work.cells_total, whole.work.cells_total);
    EXPECT_EQ(parts.work.cells_in_polygons, whole.work.cells_in_polygons);
  }
}

TEST(Partitioned, WorkspaceReuseStillExact) {
  Device dev;
  const DemRaster raster = test::random_raster(
      64, 64, 3, 49, GeoTransform(0.0, 6.4, 0.1, 0.1));
  const PolygonSet zones =
      test::random_polygon_set(4, GeoBox{0.5, 0.5, 5.9, 5.9}, 5, false);
  const ZonalPipeline pipe(dev, {.tile_size = 8, .bins = 50});
  ZonalWorkspace ws;
  const ZonalResult a = pipe.run_partitioned(raster, zones, 2, 2, &ws);
  const ZonalResult b = pipe.run_partitioned(raster, zones, 4, 1, &ws);
  EXPECT_EQ(a.per_polygon, b.per_polygon);
}

class HistCsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("zh_histcsv_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(HistCsvTest, RoundTrip) {
  HistogramSet h(3, 100);
  std::mt19937 rng(2);
  std::uniform_int_distribution<BinIndex> bin(0, 99);
  for (int i = 0; i < 500; ++i) h.of(i % 3)[bin(rng)] += 1 + i % 7;

  const std::string path = (dir_ / "h.csv").string();
  write_histogram_csv(path, h);
  const HistogramSet back = read_histogram_csv(path, 3, 100);
  EXPECT_EQ(back, h);
}

TEST_F(HistCsvTest, EmptyHistogramRoundTrips) {
  const HistogramSet h(2, 10);
  const std::string path = (dir_ / "e.csv").string();
  write_histogram_csv(path, h);
  EXPECT_EQ(read_histogram_csv(path, 2, 10), h);
}

TEST_F(HistCsvTest, MalformedRowsThrow) {
  auto write = [&](const char* name, const char* body) {
    std::ofstream os(dir_ / name);
    os << body;
    return (dir_ / name).string();
  };
  EXPECT_THROW(read_histogram_csv(write("a.csv", "bogus header\n"), 1, 1),
               IoError);
  EXPECT_THROW(read_histogram_csv(
                   write("b.csv", "zone,bin,count\n0;1;2\n"), 1, 10),
               IoError);
  EXPECT_THROW(read_histogram_csv(
                   write("c.csv", "zone,bin,count\n9,1,2\n"), 1, 10),
               IoError);
  EXPECT_THROW(read_histogram_csv(
                   write("d.csv", "zone,bin,count\n0,99,2\n"), 1, 10),
               IoError);
  EXPECT_THROW(read_histogram_csv((dir_ / "missing.csv").string(), 1, 1),
               IoError);
}

TEST(Fuzz, CorruptBqStreamsNeverCrash) {
  // Bit-flip and truncation fuzzing of the BQ-Tree decoder: every
  // corruption must either decode to *something* or throw zh::Error --
  // never crash or loop.
  std::mt19937 rng(11);
  const DemRaster dem = test::random_raster(48, 48, 4, 3000);
  const BqEncodedTile clean = bq_encode(dem.cells(), 48, 48);
  std::vector<CellValue> out(48 * 48);

  int threw = 0;
  for (int trial = 0; trial < 300; ++trial) {
    BqEncodedTile tile = clean;
    if (trial % 3 == 0 && !tile.payload.empty()) {
      // Truncate.
      tile.payload.resize(rng() % tile.payload.size());
    } else if (!tile.payload.empty()) {
      // Flip 1-8 random bits.
      const int flips = 1 + static_cast<int>(rng() % 8);
      for (int f = 0; f < flips; ++f) {
        tile.payload[rng() % tile.payload.size()] ^=
            static_cast<std::uint8_t>(1u << (rng() % 8));
      }
    }
    try {
      bq_decode(tile, out);
    } catch (const Error&) {
      ++threw;
    }
  }
  // Truncations virtually always throw; some bit flips decode silently
  // to different data (the format has no checksum, as in the paper).
  EXPECT_GT(threw, 0);
}

TEST(Fuzz, GarbageWktNeverCrashes) {
  std::mt19937 rng(13);
  const std::string alphabet = "POLYGON MULTI(),-0123456789. e";
  int parsed = 0;
  for (int trial = 0; trial < 500; ++trial) {
    std::string s = "POLYGON ((";
    const int len = static_cast<int>(rng() % 60);
    for (int i = 0; i < len; ++i) {
      s.push_back(alphabet[rng() % alphabet.size()]);
    }
    try {
      (void)parse_wkt(s);
      ++parsed;
    } catch (const Error&) {
      // expected for nearly every input
    }
  }
  EXPECT_LT(parsed, 50);  // almost all garbage must be rejected
}

TEST(Fuzz, RandomPipelineConfigsStayExact) {
  // Randomized differential testing: arbitrary small configs against the
  // scanline oracle.
  std::mt19937 rng(17);
  Device dev;
  for (int trial = 0; trial < 10; ++trial) {
    const std::int64_t rows = 20 + static_cast<std::int64_t>(rng() % 60);
    const std::int64_t cols = 20 + static_cast<std::int64_t>(rng() % 60);
    const std::int64_t tile = 1 + static_cast<std::int64_t>(rng() % 40);
    const BinIndex bins = 2 + static_cast<BinIndex>(rng() % 200);
    const DemRaster raster = test::random_raster(
        rows, cols, static_cast<std::uint32_t>(rng()),
        static_cast<CellValue>(bins * 2),  // exercise clamping too
        GeoTransform(0.0, rows * 0.1, 0.1, 0.1));
    const PolygonSet zones = test::random_polygon_set(
        static_cast<std::uint32_t>(rng()),
        GeoBox{0.5, 0.5, cols * 0.1 - 0.5, rows * 0.1 - 0.5},
        1 + static_cast<int>(rng() % 6), (rng() % 2) == 0);

    const ZonalPipeline pipe(dev, {.tile_size = tile, .bins = bins});
    const ZonalResult got = pipe.run(raster, zones);
    const HistogramSet expect = zonal_scanline(raster, zones, bins);
    ASSERT_EQ(got.per_polygon, expect)
        << "trial " << trial << ": " << rows << "x" << cols << " tile "
        << tile << " bins " << bins;
  }
}

}  // namespace
}  // namespace zh
