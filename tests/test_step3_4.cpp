#include <gtest/gtest.h>

#include "core/step1_tile_hist.hpp"
#include "core/step2_pairing.hpp"
#include "core/step3_aggregate.hpp"
#include "core/step4_refine.hpp"
#include "geom/pip.hpp"
#include "geom/soa.hpp"
#include "test_util.hpp"

namespace zh {
namespace {

TEST(Step3, AggregatesOwnedTilesOnly) {
  Device dev;
  // Three tiles with known histograms.
  HistogramSet tiles(3, 4);
  tiles.of(0)[1] = 10;
  tiles.of(1)[1] = 5;
  tiles.of(1)[3] = 2;
  tiles.of(2)[0] = 9;

  // Polygon 0 owns tiles {0, 1}; polygon 2 owns tile {2}.
  PolygonTileGroups groups;
  groups.pid_v = {0, 2};
  groups.num_v = {2, 1};
  groups.pos_v = {0, 2};
  groups.tid_v = {0, 1, 2};

  HistogramSet polys(3, 4);
  polys.of(0)[1] = 100;  // pre-existing counts must accumulate
  aggregate_inside_tiles(dev, groups, tiles, polys);

  EXPECT_EQ(polys.of(0)[1], 115u);
  EXPECT_EQ(polys.of(0)[3], 2u);
  EXPECT_EQ(polys.of(1).size(), 4u);
  EXPECT_EQ(polys.group_total(1), 0u);  // untouched polygon
  EXPECT_EQ(polys.of(2)[0], 9u);
}

TEST(Step3, EmptyGroupsIsNoop) {
  Device dev;
  HistogramSet tiles(1, 4);
  HistogramSet polys(1, 4);
  aggregate_inside_tiles(dev, PolygonTileGroups{}, tiles, polys);
  EXPECT_EQ(polys.total(), 0u);
}

TEST(Step3, BinMismatchThrows) {
  Device dev;
  HistogramSet tiles(1, 4);
  HistogramSet polys(1, 5);
  PolygonTileGroups g;
  g.pid_v = {0};
  g.num_v = {1};
  g.pos_v = {0};
  g.tid_v = {0};
  EXPECT_THROW(aggregate_inside_tiles(dev, g, tiles, polys),
               InvalidArgument);
}

TEST(Step4, CountsExactlyTheInteriorCellsOfBoundaryTiles) {
  Device dev;
  // 20x20 raster of constant value 3 over [0,2)x[0,2); tiles of 10 cells.
  DemRaster raster(20, 20, GeoTransform(0.0, 2.0, 0.1, 0.1));
  for (CellValue& v : raster.cells()) v = 3;
  const TilingScheme tiling(20, 20, 10);

  // Square polygon covering x in [0.05, 1.05), y in [0.95, 1.95): cuts
  // through all four tiles.
  PolygonSet set;
  set.add(Polygon({{{0.05, 0.95}, {1.05, 0.95}, {1.05, 1.95},
                    {0.05, 1.95}}}));
  const PolygonSoA soa = PolygonSoA::build(set);

  PolygonTileGroups intersect;
  intersect.pid_v = {0};
  intersect.num_v = {4};
  intersect.pos_v = {0};
  intersect.tid_v = {0, 1, 2, 3};

  HistogramSet polys(1, 10);
  const RefineCounters rc =
      refine_boundary_tiles(dev, intersect, soa, raster, tiling, polys);

  // Ground truth: per-cell PIP with the same reference implementation.
  BinCount expect = 0;
  for (std::int64_t r = 0; r < 20; ++r) {
    for (std::int64_t c = 0; c < 20; ++c) {
      expect += point_in_polygon(set[0],
                                 raster.transform().cell_center(r, c));
    }
  }
  EXPECT_EQ(expect, 100u);  // a 10x10 block of centers under the
                            // half-open boundary rule
  EXPECT_EQ(polys.of(0)[3], expect);
  EXPECT_EQ(rc.cells_counted, expect);
  EXPECT_EQ(rc.cell_tests, 400u);  // 4 tiles x 100 cells
  // Exactly the 4 real edges are charged per cell: the closing vertex
  // and the (0,0) ring sentinel the PiP loop skips are not edge tests.
  EXPECT_EQ(rc.edge_tests, 1600u);
}

TEST(Step4, MultiRingPolygonExcludesHoleCells) {
  Device dev;
  DemRaster raster(10, 10, GeoTransform(0.0, 1.0, 0.1, 0.1));
  for (CellValue& v : raster.cells()) v = 1;
  const TilingScheme tiling(10, 10, 10);

  PolygonSet set;
  Polygon p({{{0.05, 0.05}, {0.95, 0.05}, {0.95, 0.95}, {0.05, 0.95}}});
  p.add_ring({{0.35, 0.35}, {0.65, 0.35}, {0.65, 0.65}, {0.35, 0.65}});
  set.add(std::move(p));
  const PolygonSoA soa = PolygonSoA::build(set);

  PolygonTileGroups intersect;
  intersect.pid_v = {0};
  intersect.num_v = {1};
  intersect.pos_v = {0};
  intersect.tid_v = {0};

  HistogramSet polys(1, 4);
  refine_boundary_tiles(dev, intersect, soa, raster, tiling, polys);

  BinCount expect = 0;
  BinCount outer_only = 0;
  const Polygon outer({{{0.05, 0.05}, {0.95, 0.05}, {0.95, 0.95},
                        {0.05, 0.95}}});
  for (std::int64_t r = 0; r < 10; ++r) {
    for (std::int64_t c = 0; c < 10; ++c) {
      const GeoPoint pt = raster.transform().cell_center(r, c);
      expect += point_in_polygon(set[0], pt);
      outer_only += point_in_polygon(outer, pt);
    }
  }
  EXPECT_EQ(polys.of(0)[1], expect);
  EXPECT_LT(expect, outer_only);  // the hole really removed cells
}

TEST(Step4, NodataCellsInsidePolygonAreNotBinned) {
  Device dev;
  DemRaster raster(4, 4, GeoTransform(0.0, 4.0, 1.0, 1.0));
  for (CellValue& v : raster.cells()) v = 2;
  raster.at(1, 1) = 999;
  raster.set_nodata(CellValue{999});
  const TilingScheme tiling(4, 4, 4);

  PolygonSet set;
  set.add(Polygon({{{0.1, 0.1}, {3.9, 0.1}, {3.9, 3.9}, {0.1, 3.9}}}));
  const PolygonSoA soa = PolygonSoA::build(set);

  PolygonTileGroups intersect;
  intersect.pid_v = {0};
  intersect.num_v = {1};
  intersect.pos_v = {0};
  intersect.tid_v = {0};

  HistogramSet polys(1, 10);
  const RefineCounters rc =
      refine_boundary_tiles(dev, intersect, soa, raster, tiling, polys);
  // All 16 cell centers are interior; the nodata one is not binned.
  EXPECT_EQ(polys.group_total(0), 15u);
  EXPECT_EQ(rc.cells_counted, 15u);
}

TEST(Step4, EmptyGroupsIsNoop) {
  Device dev;
  const DemRaster raster(4, 4);
  const TilingScheme tiling(4, 4, 4);
  const PolygonSoA soa = PolygonSoA::build(PolygonSet{});
  HistogramSet polys(1, 4);
  const RefineCounters rc = refine_boundary_tiles(
      dev, PolygonTileGroups{}, soa, raster, tiling, polys);
  EXPECT_EQ(rc.cell_tests, 0u);
  EXPECT_EQ(polys.total(), 0u);
}

}  // namespace
}  // namespace zh
