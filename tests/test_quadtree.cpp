// Region-quadtree properties: lossless round trip, query correctness,
// collapse behaviour, and equality of quadtree-backed Step 1 with the
// dense kernel.
#include <gtest/gtest.h>

#include "core/step1_tile_hist.hpp"
#include "data/dem_synth.hpp"
#include "quadtree/qt_step1.hpp"
#include "quadtree/region_quadtree.hpp"
#include "test_util.hpp"

namespace zh {
namespace {

class QuadtreeShapes
    : public ::testing::TestWithParam<std::pair<std::int64_t,
                                                std::int64_t>> {};

INSTANTIATE_TEST_SUITE_P(
    Dims, QuadtreeShapes,
    ::testing::Values(std::pair{1L, 1L}, std::pair{4L, 4L},
                      std::pair{7L, 13L}, std::pair{64L, 64L},
                      std::pair{100L, 37L}, std::pair{33L, 129L}));

TEST_P(QuadtreeShapes, RoundTripsRandomRasters) {
  const auto [rows, cols] = GetParam();
  const DemRaster raster = test::random_raster(
      rows, cols, static_cast<std::uint32_t>(rows * 131 + cols), 30);
  const RegionQuadtree tree = RegionQuadtree::build(raster);
  const Raster<CellValue> back = tree.to_raster();
  ASSERT_EQ(back.rows(), rows);
  ASSERT_EQ(back.cols(), cols);
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      ASSERT_EQ(back.at(r, c), raster.at(r, c)) << r << "," << c;
      ASSERT_EQ(tree.value_at(r, c), raster.at(r, c)) << r << "," << c;
    }
  }
}

TEST(Quadtree, ConstantRasterCollapsesToOneNode) {
  DemRaster raster(64, 64);
  for (CellValue& v : raster.cells()) v = 7;
  const RegionQuadtree tree = RegionQuadtree::build(raster);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.leaf_count(), 1u);
  EXPECT_EQ(tree.height(), 0);
  EXPECT_EQ(tree.value_at(63, 0), 7);
}

TEST(Quadtree, RaggedConstantRasterStillCollapses) {
  // 100x37 pads to 128x128; outside-wildcard merging must let the
  // constant interior collapse to a single node anyway.
  DemRaster raster(100, 37);
  for (CellValue& v : raster.cells()) v = 3;
  const RegionQuadtree tree = RegionQuadtree::build(raster);
  EXPECT_EQ(tree.node_count(), 1u);
}

TEST(Quadtree, CheckerboardIsWorstCase) {
  DemRaster raster(16, 16);
  for (std::int64_t r = 0; r < 16; ++r) {
    for (std::int64_t c = 0; c < 16; ++c) {
      raster.at(r, c) = static_cast<CellValue>((r + c) % 2);
    }
  }
  const RegionQuadtree tree = RegionQuadtree::build(raster);
  EXPECT_EQ(tree.leaf_count(), 256u);  // nothing merges
  EXPECT_EQ(tree.height(), 4);         // log2(16)
}

TEST(Quadtree, LandCoverCollapsesHard) {
  const DemRaster lc = generate_landcover(
      256, 256, GeoTransform(0.0, 2.56, 0.01, 0.01), 8);
  const RegionQuadtree tree = RegionQuadtree::build(lc);
  EXPECT_LT(tree.leaf_count(), 256u * 256u / 4)
      << "land-cover patches should merge substantially";
  // Still lossless.
  const Raster<CellValue> back = tree.to_raster();
  EXPECT_TRUE(std::equal(back.cells().begin(), back.cells().end(),
                         lc.cells().begin()));
}

TEST(Quadtree, UniformValueQueries) {
  DemRaster raster(32, 32);
  for (std::int64_t r = 0; r < 32; ++r) {
    for (std::int64_t c = 0; c < 32; ++c) {
      raster.at(r, c) = static_cast<CellValue>(c < 16 ? 1 : 2);
    }
  }
  const RegionQuadtree tree = RegionQuadtree::build(raster);
  EXPECT_EQ(tree.uniform_value({0, 0, 32, 16}), CellValue{1});
  EXPECT_EQ(tree.uniform_value({5, 20, 10, 10}), CellValue{2});
  EXPECT_EQ(tree.uniform_value({0, 0, 32, 32}), std::nullopt);
  EXPECT_EQ(tree.uniform_value({0, 10, 4, 12}), std::nullopt);
  EXPECT_THROW((void)tree.uniform_value({0, 0, 33, 1}), InvalidArgument);
}

TEST(Quadtree, WindowHistogramMatchesDirectCount) {
  const DemRaster raster = test::random_raster(90, 70, 8, 19);
  const RegionQuadtree tree = RegionQuadtree::build(raster);
  for (const CellWindow w :
       {CellWindow{0, 0, 90, 70}, CellWindow{10, 20, 33, 17},
        CellWindow{89, 69, 1, 1}, CellWindow{0, 64, 13, 6}}) {
    std::vector<BinCount> got(20, 0);
    tree.add_window_histogram(w, got);
    std::vector<BinCount> expect(20, 0);
    for (std::int64_t r = w.row0; r < w.row0 + w.rows; ++r) {
      for (std::int64_t c = w.col0; c < w.col0 + w.cols; ++c) {
        ++expect[raster.at(r, c)];
      }
    }
    ASSERT_EQ(got, expect) << "window " << w.row0 << "," << w.col0;
  }
}

TEST(Quadtree, WindowHistogramClampsHighValues) {
  DemRaster raster(8, 8);
  for (CellValue& v : raster.cells()) v = 100;
  const RegionQuadtree tree = RegionQuadtree::build(raster);
  std::vector<BinCount> hist(10, 0);
  tree.add_window_histogram({0, 0, 8, 8}, hist);
  EXPECT_EQ(hist[9], 64u);
}

TEST(QuadtreeStep1, MatchesDenseKernelOnRandomAndLandCover) {
  Device dev;
  for (const bool landcover : {false, true}) {
    const DemRaster raster =
        landcover
            ? generate_landcover(130, 170,
                                 GeoTransform(0.0, 1.3, 0.01, 0.01), 12)
            : test::random_raster(130, 170, 3, 49);
    const TilingScheme tiling(raster.rows(), raster.cols(), 24);
    const RegionQuadtree tree = RegionQuadtree::build(raster);
    const HistogramSet dense = tile_histograms(dev, raster, tiling, 50);
    const HistogramSet from_tree =
        tile_histograms_from_quadtree(dev, tree, tiling, 50);
    EXPECT_EQ(dense, from_tree) << "landcover=" << landcover;
  }
}

TEST(QuadtreeStep1, MismatchedTilingThrows) {
  Device dev;
  const DemRaster raster = test::random_raster(16, 16, 1, 3);
  const RegionQuadtree tree = RegionQuadtree::build(raster);
  const TilingScheme wrong(32, 16, 8);
  EXPECT_THROW(tile_histograms_from_quadtree(dev, tree, wrong, 4),
               InvalidArgument);
}

}  // namespace
}  // namespace zh
