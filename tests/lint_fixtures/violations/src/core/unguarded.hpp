// Fixture: header without #pragma once.
namespace zh {
struct FixtureUnguarded {};
}  // namespace zh
