// Fixture: library code talking to the terminal.
namespace zh {
void fixture_noisy(long total) {
  std::cout << total;
  std::fprintf(stderr, "%ld\n", total);
}
}  // namespace zh
