// Fixture: manual ownership.
namespace zh {
void fixture_leak() {
  int* p = new int[8];
  delete[] p;
}
}  // namespace zh
