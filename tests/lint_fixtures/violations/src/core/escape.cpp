// Fixture: unscoped / unjustified clang-tidy escapes.
namespace zh {
int fixture_escape(int v) {
  return v + 1;  // NOLINT
}
int fixture_escape2(int v) {
  return v + 2;  // NOLINT(bugprone-branch-clone)
}
}  // namespace zh
