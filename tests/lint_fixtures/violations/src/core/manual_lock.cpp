// Fixture: mutex handled without RAII.
namespace zh {
void fixture_manual_lock(std::mutex& m) {
  m.lock();
  m.unlock();
}
}  // namespace zh
