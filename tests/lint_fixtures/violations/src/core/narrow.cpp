// Fixture: 32-bit cell index arithmetic.
namespace zh {
long fixture_narrow(int rows, int cols) {
  long cell_count = rows * cols;
  return cell_count;
}
std::vector<std::uint32_t> pos_v;
}  // namespace zh
