// Fixture: a project enum switched without covering every enumerator.
namespace zh {
enum class FixtureRelation : int { kOutside, kInside, kIntersect };
int fixture_partial(FixtureRelation rel) {
  switch (rel) {
    case FixtureRelation::kOutside: return 0;
    case FixtureRelation::kInside: return 1;
  }
  return 2;
}
}  // namespace zh
