// Fixture: every way a suppression comment can rot.
namespace zh {
void fixture_bad_suppressions() {
  // zh-lint-ignore(naked-new)
  int* p = new int;
  // zh-lint-ignore(stdio-in-lib): nothing noisy below any more
  use(p);
  // zh-lint-ignore(no-such-rule): typo in the rule id
  use(p);
  // zh-lint-ignore: forgot to name a rule entirely
  use(p);
}
}  // namespace zh
