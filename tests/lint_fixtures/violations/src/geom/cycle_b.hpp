#pragma once
#include "geom/cycle_a.hpp"
