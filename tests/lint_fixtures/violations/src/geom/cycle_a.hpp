#pragma once
#include "geom/cycle_b.hpp"
