#pragma once
#include "core/histogram.hpp"
