// Fixture: every shape of a dropped comm Status.
namespace zh {
void fixture_discard(Communicator& comm, Deadline d) {
  comm.barrier(d);
  (void)comm.recv_any(tags, d, msg);
  comm.recv<int>(0, 1, d, out);
}
}  // namespace zh
