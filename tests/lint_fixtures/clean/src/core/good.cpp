// Clean fixture: near-misses for every rule; zh-lint must stay silent.
#include "common/base.hpp"

namespace zh {

// naked-new near-misses: deleted functions and comments are not
// deallocations; the suppressed singleton documents its reason.
struct FixtureNoCopy {
  FixtureNoCopy(const FixtureNoCopy&) = delete;
  FixtureNoCopy& operator=(const FixtureNoCopy&) = delete;
};

FixtureBase& fixture_registry() {
  // zh-lint-ignore(naked-new): fixture: intentional leaky singleton
  static FixtureBase* b = new FixtureBase();
  return *b;
}

// index-width near-misses: wide operands, widened casts, and a literal
// operand ("new int" in a string, 1'000'000 separators exercise the lexer).
long fixture_index(const FixtureBase& base, unsigned plane) {
  const long cells = base.rows * base.cols;
  const char* text = "std::cout << new int[rows * cols];";
  const long scaled = cells * 1'000'000 + static_cast<long>(plane);
  return scaled + static_cast<long>(sizeof(text));
}

// index-width pass-3 near-misses: a wide scan vector, a narrow vector
// whose name is not a scan/offset, and a scan-named scalar.
std::vector<std::uint64_t> pos_v;
std::vector<std::uint32_t> tile_ids;
std::uint32_t num_scalar = 0;

// raw-mutex-lock near-miss: RAII guards; weak against .lock() only.
void fixture_guard(std::mutex& m) {
  std::lock_guard<std::mutex> hold(m);
}

// stdio near-miss: writing to a caller-supplied FILE* is the library's
// reporting contract (obs/report.cpp does exactly this).
void fixture_report(std::FILE* out, long v) {
  std::fprintf(out, "%ld\n", v);
  std::snprintf(nullptr, 0, "%ld", v);
}

// switch-enum near-misses: exhaustive without default, partial with one.
int fixture_switch(FixtureCode code) {
  switch (code) {
    case FixtureCode::kOk: return 0;
    case FixtureCode::kBad: return 1;
  }
  switch (code) {
    case FixtureCode::kOk: return 0;
    default: return 1;
  }
}

// discarded-status near-misses: consumed results and the void barrier().
int fixture_status(Communicator& comm, Deadline d) {
  comm.barrier();
  if (auto s = comm.barrier(d); !s.is_ok()) return 1;
  comm.recv_bytes(0, 1, d, buf).throw_if_error();
  return fixture_switch(FixtureCode::kOk);  // NOLINT(misc-no-recursion): fixture: scoped and justified
}

}  // namespace zh
