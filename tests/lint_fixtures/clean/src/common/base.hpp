// Clean fixture: a well-formed leaf header.
#pragma once

namespace zh {

enum class FixtureCode : int { kOk, kBad };

struct FixtureBase {
  long rows = 0;
  long cols = 0;
};

}  // namespace zh
