// Crash-consistent run journal (DESIGN.md 5d): header/manifest
// verification, torn-tail truncation at every byte, bit-flip fuzz,
// generation semantics across append, first-copy-wins merging, and the
// writer's duplicate guards.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "common/crc32.hpp"
#include "data/county_synth.hpp"
#include "data/dem_synth.hpp"
#include "io/journal.hpp"

namespace zh {
namespace {

// Mirrors the on-disk constants in journal.cpp; a drift here means the
// format changed and these tests must be revisited deliberately.
constexpr std::size_t kHeaderBytes = 52;

class JournalFile : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("zh_journal_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  static std::vector<char> slurp(const std::string& p) {
    std::ifstream is(p, std::ios::binary);
    return {std::istreambuf_iterator<char>(is),
            std::istreambuf_iterator<char>()};
  }

  static void spit(const std::string& p, const std::vector<char>& bytes) {
    std::ofstream os(p, std::ios::binary);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::filesystem::path dir_;
};

/// 4 partitions x (3 groups x 8 bins) test manifest.
RunManifest test_manifest() {
  RunManifest m;
  m.raster_fingerprint = 0x1111222233334444ull;
  m.zones_fingerprint = 0x5555666677778888ull;
  m.config_fingerprint = 0x9999AAAABBBBCCCCull;
  m.partition_count = 4;
  m.groups = 3;
  m.bins = 8;
  return m;
}

/// Dense 24-slot histogram with the given sparse entries set.
std::vector<BinCount> bins_with(
    std::initializer_list<std::pair<std::size_t, BinCount>> entries) {
  std::vector<BinCount> out(24, 0);
  for (const auto& [slot, count] : entries) out[slot] = count;
  return out;
}

/// A journal with three generation-0 records (parts 0, 2, 1).
void write_three_records(const std::string& p) {
  JournalWriter w = JournalWriter::create(p, test_manifest());
  w.on_partition_complete(0, bins_with({{0, 5}, {7, 2}}));
  w.on_partition_complete(2, bins_with({{7, 3}, {23, 9}}));
  w.on_partition_complete(1, bins_with({{12, 1}}));
  w.flush();
}

TEST_F(JournalFile, RoundTripRecoversRecordsAndMergedBins) {
  write_three_records(path("j"));
  const JournalLoad load = load_journal(path("j"));

  EXPECT_EQ(load.manifest, test_manifest());
  ASSERT_EQ(load.records.size(), 3u);
  EXPECT_EQ(load.records[0], (JournalRecordInfo{0, 0}));
  EXPECT_EQ(load.records[1], (JournalRecordInfo{0, 2}));
  EXPECT_EQ(load.records[2], (JournalRecordInfo{0, 1}));
  EXPECT_EQ(load.completed, (std::vector<std::uint32_t>{0, 2, 1}));
  EXPECT_EQ(load.merged_bins,
            bins_with({{0, 5}, {7, 5}, {12, 1}, {23, 9}}));
  EXPECT_EQ(load.last_generation, 0u);
  EXPECT_EQ(load.torn_bytes, 0u);
  EXPECT_EQ(load.valid_bytes, slurp(path("j")).size());
}

TEST_F(JournalFile, FreshJournalLoadsEmpty) {
  { JournalWriter w = JournalWriter::create(path("j"), test_manifest()); }
  const JournalLoad load = load_journal(path("j"));
  EXPECT_TRUE(load.records.empty());
  EXPECT_TRUE(load.completed.empty());
  EXPECT_EQ(load.valid_bytes, kHeaderBytes);
  EXPECT_EQ(load.torn_bytes, 0u);
  EXPECT_EQ(load.merged_bins, std::vector<BinCount>(24, 0));
}

TEST_F(JournalFile, WriterReportsProgress) {
  JournalWriter w = JournalWriter::create(path("j"), test_manifest());
  EXPECT_EQ(w.generation(), 0u);
  EXPECT_EQ(w.records_written(), 0u);
  w.on_partition_complete(3, bins_with({{1, 1}}));
  EXPECT_EQ(w.records_written(), 1u);
}

TEST_F(JournalFile, TruncationAtEveryByteRecoversAPrefix) {
  // The torn-tail rule, exhaustively: cutting the file at ANY byte must
  // either fail the header check (IoError) or load a clean prefix of the
  // records -- never crash, never return partial/garbled bins.
  write_three_records(path("full"));
  const std::vector<char> good = slurp(path("full"));
  const JournalLoad full = load_journal(path("full"));

  for (std::size_t len = 0; len < good.size(); ++len) {
    SCOPED_TRACE("truncated to " + std::to_string(len) + " bytes");
    spit(path("t"), std::vector<char>(
                        good.begin(),
                        good.begin() + static_cast<std::ptrdiff_t>(len)));
    if (len < kHeaderBytes) {
      EXPECT_THROW((void)load_journal(path("t")), IoError);
      continue;
    }
    const JournalLoad load = load_journal(path("t"));
    ASSERT_LE(load.records.size(), full.records.size());
    for (std::size_t i = 0; i < load.records.size(); ++i) {
      EXPECT_EQ(load.records[i], full.records[i]);
    }
    EXPECT_EQ(load.valid_bytes + load.torn_bytes, len);
    // The merged histogram covers exactly the surviving records.
    std::vector<BinCount> expect(24, 0);
    if (!load.records.empty()) expect = bins_with({{0, 5}, {7, 2}});
    if (load.records.size() >= 2) expect[7] += 3, expect[23] += 9;
    if (load.records.size() >= 3) expect[12] += 1;
    EXPECT_EQ(load.merged_bins, expect);
  }
}

TEST_F(JournalFile, BitFlipFuzzLoadsPrefixOrRejects) {
  // Any single-bit corruption must leave the loader in one of exactly two
  // states: a clean IoError (header/content damage) or a successful load
  // of an unmodified record prefix (frame damage => torn tail). Anything
  // else -- a crash, garbled counts, records past the flip -- is a bug.
  write_three_records(path("full"));
  const std::vector<char> good = slurp(path("full"));
  const JournalLoad full = load_journal(path("full"));

  for (std::size_t byte = 0; byte < good.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      SCOPED_TRACE("flip at byte " + std::to_string(byte) + " bit " +
                   std::to_string(bit));
      std::vector<char> bad = good;
      bad[byte] = static_cast<char>(bad[byte] ^ (1 << bit));
      spit(path("f"), bad);
      try {
        const JournalLoad load = load_journal(path("f"));
        // Loaded: every surviving record must be byte-exact original.
        ASSERT_LE(load.records.size(), full.records.size());
        for (std::size_t i = 0; i < load.records.size(); ++i) {
          EXPECT_EQ(load.records[i], full.records[i]);
        }
        // A flip inside the frame area must cost at least that frame.
        if (byte >= kHeaderBytes) {
          EXPECT_LT(load.records.size(), full.records.size());
        }
      } catch (const IoError&) {
        // Equally acceptable: detected and rejected.
      }
    }
  }
}

TEST_F(JournalFile, AppendContinuesAtNextGeneration) {
  {
    JournalWriter w = JournalWriter::create(path("j"), test_manifest());
    w.on_partition_complete(0, bins_with({{3, 4}}));
    w.on_partition_complete(2, bins_with({{5, 6}}));
  }
  const JournalLoad first = load_journal(path("j"));
  {
    JournalWriter w = JournalWriter::append(path("j"), first);
    EXPECT_EQ(w.generation(), 1u);
    w.on_partition_complete(1, bins_with({{3, 10}}));
    w.on_partition_complete(3, bins_with({{20, 1}}));
  }
  const JournalLoad load = load_journal(path("j"));
  ASSERT_EQ(load.records.size(), 4u);
  EXPECT_EQ(load.records[0], (JournalRecordInfo{0, 0}));
  EXPECT_EQ(load.records[1], (JournalRecordInfo{0, 2}));
  EXPECT_EQ(load.records[2], (JournalRecordInfo{1, 1}));
  EXPECT_EQ(load.records[3], (JournalRecordInfo{1, 3}));
  EXPECT_EQ(load.last_generation, 1u);
  EXPECT_EQ(load.completed, (std::vector<std::uint32_t>{0, 2, 1, 3}));
  EXPECT_EQ(load.merged_bins, bins_with({{3, 14}, {5, 6}, {20, 1}}));
}

TEST_F(JournalFile, AppendOnEmptyJournalStaysGenerationZero) {
  { JournalWriter w = JournalWriter::create(path("j"), test_manifest()); }
  const JournalLoad load = load_journal(path("j"));
  JournalWriter w = JournalWriter::append(path("j"), load);
  EXPECT_EQ(w.generation(), 0u);  // no records yet: not really a resume
}

TEST_F(JournalFile, AppendCutsTornTailOffOnDisk) {
  write_three_records(path("j"));
  std::vector<char> bytes = slurp(path("j"));
  const std::size_t clean_size = bytes.size();
  // Simulate a kill mid-append: half a plausible frame.
  bytes.insert(bytes.end(), {40, 0, 0, 0, 'x', 'y', 'z'});
  spit(path("j"), bytes);

  const JournalLoad load = load_journal(path("j"));
  EXPECT_EQ(load.records.size(), 3u);
  EXPECT_EQ(load.torn_bytes, 7u);
  {
    JournalWriter w = JournalWriter::append(path("j"), load);
    w.on_partition_complete(3, bins_with({{2, 2}}));
  }
  // The torn bytes are gone from disk and the new frame sits flush
  // against the trusted prefix.
  const JournalLoad after = load_journal(path("j"));
  EXPECT_EQ(after.torn_bytes, 0u);
  ASSERT_EQ(after.records.size(), 4u);
  EXPECT_EQ(after.records[3], (JournalRecordInfo{1, 3}));
  EXPECT_GT(slurp(path("j")).size(), clean_size);
}

TEST_F(JournalFile, WriterRefusesDuplicateWithinGeneration) {
  JournalWriter w = JournalWriter::create(path("j"), test_manifest());
  w.on_partition_complete(1, bins_with({{0, 1}}));
  EXPECT_THROW(w.on_partition_complete(1, bins_with({{0, 1}})),
               InvalidArgument);
}

TEST_F(JournalFile, WriterRefusesRejournalingResumedPartition) {
  {
    JournalWriter w = JournalWriter::create(path("j"), test_manifest());
    w.on_partition_complete(0, bins_with({{0, 1}}));
  }
  const JournalLoad load = load_journal(path("j"));
  JournalWriter w = JournalWriter::append(path("j"), load);
  // Partition 0 is already durable from generation 0: the driver must
  // never hand it to the sink again, and the writer enforces that.
  EXPECT_THROW(w.on_partition_complete(0, bins_with({{0, 1}})),
               InvalidArgument);
}

TEST_F(JournalFile, WriterValidatesArguments) {
  JournalWriter w = JournalWriter::create(path("j"), test_manifest());
  EXPECT_THROW(w.on_partition_complete(4, bins_with({})), InvalidArgument);
  EXPECT_THROW(
      w.on_partition_complete(0, std::vector<BinCount>(23, 0)),
      InvalidArgument);
}

// ------------------------- hand-crafted frames (loader content checks)

void put_u32(std::vector<char>& buf, std::uint32_t v) {
  const char* p = reinterpret_cast<const char*>(&v);
  buf.insert(buf.end(), p, p + sizeof(v));
}

void put_u64(std::vector<char>& buf, std::uint64_t v) {
  const char* p = reinterpret_cast<const char*>(&v);
  buf.insert(buf.end(), p, p + sizeof(v));
}

/// A well-formed frame the writer would never produce on its own.
std::vector<char> craft_frame(
    std::uint32_t generation, std::uint32_t part,
    std::initializer_list<std::pair<std::uint64_t, BinCount>> entries) {
  std::vector<char> payload;
  put_u32(payload, generation);
  put_u32(payload, part);
  put_u64(payload, entries.size());
  for (const auto& [slot, count] : entries) {
    put_u64(payload, slot);
    put_u32(payload, count);
  }
  std::vector<char> frame;
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());
  put_u32(frame, crc32(payload.data(), payload.size()));
  return frame;
}

void append_raw(const std::string& p, const std::vector<char>& bytes) {
  std::ofstream os(p, std::ios::binary | std::ios::app);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST_F(JournalFile, FirstCopyWinsAcrossGenerations) {
  {
    JournalWriter w = JournalWriter::create(path("j"), test_manifest());
    w.on_partition_complete(0, bins_with({{4, 7}}));
  }
  // A later generation re-journaling partition 0 with DIFFERENT counts:
  // valid on disk (a crashed resume may race its own acceptance), but
  // the first durable copy must win, mirroring the master's acceptance.
  append_raw(path("j"), craft_frame(1, 0, {{4, 999}}));
  const JournalLoad load = load_journal(path("j"));
  ASSERT_EQ(load.records.size(), 2u);
  EXPECT_EQ(load.completed, (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(load.merged_bins, bins_with({{4, 7}}));
  EXPECT_EQ(load.last_generation, 1u);
}

TEST_F(JournalFile, LoaderRejectsDuplicateWithinAGeneration) {
  {
    JournalWriter w = JournalWriter::create(path("j"), test_manifest());
    w.on_partition_complete(0, bins_with({{4, 7}}));
  }
  // Same generation, same partition, valid CRC: the writer can never
  // produce this, so it is corruption -- a hard error, not a torn tail.
  append_raw(path("j"), craft_frame(0, 0, {{4, 7}}));
  EXPECT_THROW((void)load_journal(path("j")), IoError);
}

TEST_F(JournalFile, LoaderRejectsGenerationDecrease) {
  { JournalWriter w = JournalWriter::create(path("j"), test_manifest()); }
  append_raw(path("j"), craft_frame(1, 0, {}));
  append_raw(path("j"), craft_frame(0, 1, {}));
  EXPECT_THROW((void)load_journal(path("j")), IoError);
}

TEST_F(JournalFile, LoaderRejectsOutOfRangeContent) {
  { JournalWriter w = JournalWriter::create(path("j"), test_manifest()); }
  append_raw(path("j"), craft_frame(0, 7, {}));  // part 7 of 4
  EXPECT_THROW((void)load_journal(path("j")), IoError);

  write_three_records(path("k"));
  append_raw(path("k"), craft_frame(0, 3, {{24, 1}}));  // slot 24 of 24
  EXPECT_THROW((void)load_journal(path("k")), IoError);
}

TEST_F(JournalFile, RejectsForeignMagicAndVersion) {
  spit(path("j"), std::vector<char>(kHeaderBytes, 0));
  EXPECT_THROW((void)load_journal(path("j")), IoError);

  write_three_records(path("k"));
  std::vector<char> bytes = slurp(path("k"));
  const std::uint32_t v2 = 2;
  std::memcpy(bytes.data() + 4, &v2, sizeof(v2));
  spit(path("k"), bytes);
  try {
    (void)load_journal(path("k"));
    FAIL() << "future journal version was not rejected";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
        << e.what();
  }
}

TEST_F(JournalFile, MissingJournalFailsCleanly) {
  EXPECT_THROW((void)load_journal(path("nope")), IoError);
}

// ----------------------------------------- manifest and fingerprints

TEST_F(JournalFile, ManifestMismatchRefusedWithRecoveryHint) {
  RunManifest disk = test_manifest();
  RunManifest now = disk;
  now.raster_fingerprint ^= 1;
  try {
    require_manifest_match(disk, now, "j");
    FAIL() << "changed raster accepted for resume";
  } catch (const IoError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("raster fingerprint"), std::string::npos) << what;
    EXPECT_NE(what.find("delete the checkpoint directory"),
              std::string::npos)
        << what;
  }
  now = disk;
  now.bins += 1;
  EXPECT_THROW(require_manifest_match(disk, now, "j"), IoError);
  require_manifest_match(disk, disk, "j");  // identical: no throw
}

TEST_F(JournalFile, FingerprintsSeeEveryInput) {
  const GeoTransform gt(0.0, 9.6, 0.1, 0.1);
  const DemParams dp{.seed = 17, .max_value = 59};
  std::vector<DemRaster> a;
  a.push_back(generate_dem(96, 96, gt, dp));
  std::vector<DemRaster> b;
  b.push_back(generate_dem(96, 96, gt, dp));
  EXPECT_EQ(fingerprint_rasters(a), fingerprint_rasters(b));
  // One cell changed => different identity.
  b[0].at(50, 50) += 1;
  EXPECT_NE(fingerprint_rasters(a), fingerprint_rasters(b));

  CountyParams cp;
  cp.seed = 4;
  const GeoBox box{-0.5, -0.5, 10.1, 10.1};
  const PolygonSet z1 = generate_counties(box, cp);
  cp.seed = 5;
  const PolygonSet z2 = generate_counties(box, cp);
  EXPECT_EQ(fingerprint_zones(z1), fingerprint_zones(z1));
  EXPECT_NE(fingerprint_zones(z1), fingerprint_zones(z2));

  const std::vector<std::pair<int, int>> schemas = {{2, 2}};
  const ZonalConfig base{.tile_size = 16, .bins = 60};
  const std::uint64_t fp = fingerprint_config(schemas, base, false);
  ZonalConfig changed = base;
  changed.bins = 61;
  EXPECT_NE(fp, fingerprint_config(schemas, changed, false));
  changed = base;
  changed.tile_size = 32;
  EXPECT_NE(fp, fingerprint_config(schemas, changed, false));
  EXPECT_NE(fp, fingerprint_config({{2, 3}}, base, false));
  EXPECT_NE(fp, fingerprint_config(schemas, base, true));
  // Refine strategy is bit-identity-invariant, so it must NOT change the
  // fingerprint: switching it between runs is a legal resume.
  changed = base;
  changed.refine_strategy = RefineStrategy::kScanline;
  EXPECT_EQ(fp, fingerprint_config(schemas, changed, false));
}

TEST_F(JournalFile, MakeManifestAgreesWithDriverPartitioning) {
  std::vector<DemRaster> rasters;
  rasters.push_back(
      generate_dem(96, 96, GeoTransform(0.0, 9.6, 0.1, 0.1),
                   DemParams{.seed = 17, .max_value = 59}));
  CountyParams cp;
  cp.seed = 4;
  const PolygonSet zones =
      generate_counties(GeoBox{-0.5, -0.5, 10.1, 10.1}, cp);
  ClusterRunConfig cfg;
  cfg.zonal = {.tile_size = 16, .bins = 60};
  const RunManifest m = make_manifest(rasters, {{2, 2}}, zones, cfg);
  EXPECT_EQ(m.partition_count, 4u);
  EXPECT_EQ(m.groups, zones.size());
  EXPECT_EQ(m.bins, 60u);
  EXPECT_NE(m.raster_fingerprint, 0u);
  EXPECT_NE(m.zones_fingerprint, 0u);
}

}  // namespace
}  // namespace zh
