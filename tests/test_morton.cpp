#include <gtest/gtest.h>

#include <set>

#include "core/step1_tile_hist.hpp"
#include "grid/morton.hpp"
#include "test_util.hpp"

namespace zh {
namespace {

TEST(Morton, EncodeDecodeRoundTrip) {
  for (std::uint32_t r : {0u, 1u, 2u, 17u, 255u, 1000u, 65535u}) {
    for (std::uint32_t c : {0u, 1u, 3u, 100u, 4095u, 65535u}) {
      const std::uint32_t code = morton_encode(r, c);
      const MortonCell cell = morton_decode(code);
      ASSERT_EQ(cell.row, r);
      ASSERT_EQ(cell.col, c);
    }
  }
}

TEST(Morton, KnownCodes) {
  // Z-order within a 2x2 block: (0,0)=0, (0,1)=1, (1,0)=2, (1,1)=3.
  EXPECT_EQ(morton_encode(0, 0), 0u);
  EXPECT_EQ(morton_encode(0, 1), 1u);
  EXPECT_EQ(morton_encode(1, 0), 2u);
  EXPECT_EQ(morton_encode(1, 1), 3u);
  EXPECT_EQ(morton_encode(2, 2), 12u);
}

TEST(Morton, CodesAreUnique) {
  std::set<std::uint32_t> seen;
  for (std::uint32_t r = 0; r < 64; ++r) {
    for (std::uint32_t c = 0; c < 64; ++c) {
      ASSERT_TRUE(seen.insert(morton_encode(r, c)).second);
    }
  }
}

TEST(Morton, ForEachCellVisitsEveryCellOnceInBothOrders) {
  for (const CellOrder order : {CellOrder::kRowMajor, CellOrder::kMorton}) {
    for (const auto& [rows, cols] :
         {std::pair{1u, 1u}, std::pair{7u, 5u}, std::pair{16u, 16u},
          std::pair{3u, 33u}}) {
      std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
      for_each_cell(rows, cols, order, [&](std::uint32_t r,
                                           std::uint32_t c) {
        ASSERT_LT(r, rows);
        ASSERT_LT(c, cols);
        ASSERT_TRUE(seen.emplace(r, c).second);
      });
      ASSERT_EQ(seen.size(), static_cast<std::size_t>(rows) * cols)
          << "order " << static_cast<int>(order) << " " << rows << "x"
          << cols;
    }
  }
}

TEST(Morton, RowMajorOrderIsRowMajor) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> visits;
  for_each_cell(3, 2, CellOrder::kRowMajor,
                [&](std::uint32_t r, std::uint32_t c) {
                  visits.emplace_back(r, c);
                });
  EXPECT_EQ(visits,
            (std::vector<std::pair<std::uint32_t, std::uint32_t>>{
                {0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 0}, {2, 1}}));
}

TEST(Morton, MortonOrderPreservesLocality) {
  // Mean Chebyshev distance between consecutive visits must be smaller
  // in Z-order than the worst case and bounded; mostly it's 1.
  std::vector<MortonCell> visits;
  for_each_cell(64, 64, CellOrder::kMorton,
                [&](std::uint32_t r, std::uint32_t c) {
                  visits.push_back({r, c});
                });
  double total = 0;
  for (std::size_t i = 1; i < visits.size(); ++i) {
    const auto dr = static_cast<double>(visits[i].row) -
                    static_cast<double>(visits[i - 1].row);
    const auto dc = static_cast<double>(visits[i].col) -
                    static_cast<double>(visits[i - 1].col);
    total += std::max(std::abs(dr), std::abs(dc));
  }
  EXPECT_LT(total / static_cast<double>(visits.size() - 1), 2.0);
}

TEST(Morton, EmptyWindow) {
  int count = 0;
  for_each_cell(0, 10, CellOrder::kMorton, [&](auto, auto) { ++count; });
  for_each_cell(10, 0, CellOrder::kRowMajor, [&](auto, auto) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(Morton, Step1ResultIndependentOfCellOrder) {
  Device dev;
  const DemRaster r = test::random_raster(100, 90, 3, 255);
  const TilingScheme tiling(r.rows(), r.cols(), 16);
  const HistogramSet a = tile_histograms(dev, r, tiling, 256,
                                         CountMode::kAtomic,
                                         CellOrder::kRowMajor);
  const HistogramSet b = tile_histograms(dev, r, tiling, 256,
                                         CountMode::kAtomic,
                                         CellOrder::kMorton);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace zh
