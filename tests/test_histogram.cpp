#include <gtest/gtest.h>

#include "core/histogram.hpp"

namespace zh {
namespace {

TEST(HistogramSet, ShapeAndAccess) {
  HistogramSet h(3, 10);
  EXPECT_EQ(h.groups(), 3u);
  EXPECT_EQ(h.bins(), 10u);
  EXPECT_EQ(h.flat().size(), 30u);
  h.of(1)[4] = 7;
  EXPECT_EQ(h.flat()[14], 7u);
  EXPECT_EQ(h.group_total(1), 7u);
  EXPECT_EQ(h.group_total(0), 0u);
  EXPECT_EQ(h.total(), 7u);
  EXPECT_THROW((void)h.of(3), InvalidArgument);
}

TEST(HistogramSet, AddAccumulatesElementwise) {
  HistogramSet a(2, 4);
  HistogramSet b(2, 4);
  a.of(0)[1] = 3;
  b.of(0)[1] = 4;
  b.of(1)[2] = 5;
  a.add(b);
  EXPECT_EQ(a.of(0)[1], 7u);
  EXPECT_EQ(a.of(1)[2], 5u);
  HistogramSet c(2, 5);
  EXPECT_THROW(a.add(c), InvalidArgument);
}

TEST(HistogramSet, EqualityAndZeroInit) {
  HistogramSet a(2, 3);
  HistogramSet b(2, 3);
  EXPECT_EQ(a, b);
  for (const BinCount v : a.flat()) EXPECT_EQ(v, 0u);
  a.of(0)[0] = 1;
  EXPECT_NE(a, b);
}

TEST(HistogramSet, RejectsZeroBins) {
  EXPECT_THROW(HistogramSet(1, 0), InvalidArgument);
}

TEST(ZonalStats, BasicMoments) {
  HistogramSet h(1, 10);
  // Values: 2 x3, 5 x1 -> count 4, mean (6+5)/4 = 2.75.
  h.of(0)[2] = 3;
  h.of(0)[5] = 1;
  const ZonalStats s = stats_from_histogram(h.of(0));
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.min, 2u);
  EXPECT_EQ(s.max, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 2.75);
  // Population variance: (3*(2-2.75)^2 + (5-2.75)^2)/4 = 1.6875.
  EXPECT_NEAR(s.stddev * s.stddev, 1.6875, 1e-12);
}

TEST(ZonalStats, EmptyHistogram) {
  HistogramSet h(1, 5);
  const ZonalStats s = stats_from_histogram(h.of(0));
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(ZonalStats, SingleBin) {
  HistogramSet h(1, 5);
  h.of(0)[3] = 100;
  const ZonalStats s = stats_from_histogram(h.of(0));
  EXPECT_EQ(s.min, 3u);
  EXPECT_EQ(s.max, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(HistogramDistance, L1) {
  HistogramSet a(1, 4);
  HistogramSet b(1, 4);
  a.of(0)[0] = 5;
  a.of(0)[2] = 1;
  b.of(0)[0] = 2;
  b.of(0)[3] = 7;
  EXPECT_EQ(histogram_l1_distance(a.of(0), b.of(0)), 3u + 1u + 7u);
  EXPECT_EQ(histogram_l1_distance(a.of(0), a.of(0)), 0u);
  HistogramSet c(1, 5);
  EXPECT_THROW((void)histogram_l1_distance(a.of(0), c.of(0)), InvalidArgument);
}

}  // namespace
}  // namespace zh
