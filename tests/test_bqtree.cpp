// BQ-Tree codec properties (DESIGN.md invariant 4): decode(encode(x)) == x
// for every raster, per-tile decode equals windowed full decode, and the
// compression behaviour the paper relies on (smooth DEM data compresses
// well; dropped all-zero bitplanes).
#include <gtest/gtest.h>

#include <random>

#include "bqtree/bitstream.hpp"
#include "bqtree/bqtree.hpp"
#include "bqtree/compressed_raster.hpp"
#include "data/dem_synth.hpp"
#include "test_util.hpp"

namespace zh {
namespace {

TEST(BitStream, RoundTripBitsAndFields) {
  BitWriter w;
  w.put(true);
  w.put(false);
  w.put_bits(0b1011, 4);
  w.put_bits(0xDEADBEEF, 32);
  EXPECT_EQ(w.bit_count(), 38u);
  const auto bytes = w.take();

  BitReader r(bytes);
  EXPECT_TRUE(r.get());
  EXPECT_FALSE(r.get());
  EXPECT_EQ(r.get_bits(4), 0b1011u);
  EXPECT_EQ(r.get_bits(32), 0xDEADBEEFu);
  EXPECT_EQ(r.position(), 38u);
}

TEST(BitStream, ExhaustionThrows) {
  BitWriter w;
  w.put(true);
  const auto bytes = w.take();
  BitReader r(bytes);
  r.get_bits(8);  // padding bits within the byte are readable
  EXPECT_THROW(r.get(), InvalidArgument);
}

class BqRoundTrip
    : public ::testing::TestWithParam<std::pair<std::uint32_t,
                                                std::uint32_t>> {};

INSTANTIATE_TEST_SUITE_P(
    Shapes, BqRoundTrip,
    ::testing::Values(std::pair{1u, 1u}, std::pair{4u, 4u},
                      std::pair{7u, 13u}, std::pair{64u, 64u},
                      std::pair{100u, 37u}, std::pair{360u, 360u},
                      std::pair{1u, 257u}));

TEST_P(BqRoundTrip, RandomDataDecodesExactly) {
  const auto [rows, cols] = GetParam();
  std::mt19937 rng(rows * 1000 + cols);
  std::uniform_int_distribution<std::uint32_t> dist(0, 0xFFFF);
  std::vector<CellValue> cells(static_cast<std::size_t>(rows) * cols);
  for (auto& v : cells) v = static_cast<CellValue>(dist(rng));

  const BqEncodedTile enc = bq_encode(cells, rows, cols);
  std::vector<CellValue> out(cells.size());
  bq_decode(enc, out);
  EXPECT_EQ(out, cells);
}

TEST_P(BqRoundTrip, SmoothDataDecodesExactly) {
  const auto [rows, cols] = GetParam();
  std::vector<CellValue> cells(static_cast<std::size_t>(rows) * cols);
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t c = 0; c < cols; ++c) {
      cells[static_cast<std::size_t>(r) * cols + c] =
          static_cast<CellValue>((r / 8) * 16 + (c / 8));
    }
  }
  const BqEncodedTile enc = bq_encode(cells, rows, cols);
  std::vector<CellValue> out(cells.size());
  bq_decode(enc, out);
  EXPECT_EQ(out, cells);
}

TEST(BqTree, ConstantRasterCompressesToAlmostNothing) {
  const std::uint32_t n = 256;
  std::vector<CellValue> cells(n * n, 1234);
  const BqEncodedTile enc = bq_encode(cells, n, n);
  // Each present bitplane is a single all-ones root node (2 bits).
  EXPECT_LT(enc.payload.size(), 16u);
  std::vector<CellValue> out(cells.size());
  bq_decode(enc, out);
  EXPECT_EQ(out, cells);
}

TEST(BqTree, AllZeroPlanesAreDropped) {
  std::vector<CellValue> cells(64 * 64, 0);
  cells[0] = 0b101;  // only planes 0 and 2 have any bits
  const BqEncodedTile enc = bq_encode(cells, 64, 64);
  EXPECT_EQ(enc.plane_mask, 0b101u);
  std::vector<CellValue> out(cells.size());
  bq_decode(enc, out);
  EXPECT_EQ(out, cells);
}

TEST(BqTree, EmptyTile) {
  const BqEncodedTile enc = bq_encode({}, 0, 0);
  EXPECT_EQ(enc.plane_mask, 0u);
  std::vector<CellValue> out;
  EXPECT_NO_THROW(bq_decode(enc, out));
}

TEST(BqTree, SizeMismatchThrows) {
  std::vector<CellValue> cells(10);
  EXPECT_THROW(bq_encode(cells, 3, 4), InvalidArgument);
  const BqEncodedTile enc = bq_encode(cells, 2, 5);
  std::vector<CellValue> out(9);
  EXPECT_THROW(bq_decode(enc, out), InvalidArgument);
}

TEST(BqTree, SmoothTerrainCompressesWell) {
  // The paper reports ~18% of raw size on real SRTM data; fBm terrain
  // should land in the same regime (well under half of raw).
  const DemRaster dem = generate_dem(
      720, 720, GeoTransform(-100.0, 40.0, 1.0 / 3600.0, 1.0 / 3600.0));
  const BqCompressedRaster comp = BqCompressedRaster::encode(dem, 360);
  EXPECT_LT(comp.compression_ratio(), 0.5);
  EXPECT_GT(comp.compression_ratio(), 0.0);
}

TEST(BqTree, RandomNoiseDoesNotCompress) {
  const DemRaster noise = test::random_raster(256, 256, 5, 0xFFFF);
  const BqCompressedRaster comp = BqCompressedRaster::encode(noise, 128);
  // Incompressible input: ratio near (or above) 1.
  EXPECT_GT(comp.compression_ratio(), 0.9);
}

TEST(CompressedRaster, DecodeAllMatchesOriginal) {
  const DemRaster dem = generate_dem(
      300, 500, GeoTransform(-100.0, 40.0, 0.01, 0.01));
  const BqCompressedRaster comp = BqCompressedRaster::encode(dem, 128);
  const DemRaster back = comp.decode_all();
  EXPECT_EQ(back.rows(), dem.rows());
  EXPECT_EQ(back.cols(), dem.cols());
  EXPECT_TRUE(std::equal(back.cells().begin(), back.cells().end(),
                         dem.cells().begin()));
}

TEST(CompressedRaster, PerTileDecodeMatchesWindow) {
  const DemRaster dem = test::random_raster(250, 170, 11, 6000);
  const BqCompressedRaster comp = BqCompressedRaster::encode(dem, 64);
  const TilingScheme& tiling = comp.tiling();
  for (TileId id = 0; id < tiling.tile_count(); ++id) {
    const CellWindow w = tiling.tile_window(id);
    std::vector<CellValue> tile(static_cast<std::size_t>(w.cell_count()));
    comp.decode_tile(id, tile);
    for (std::int64_t r = 0; r < w.rows; ++r) {
      for (std::int64_t c = 0; c < w.cols; ++c) {
        ASSERT_EQ(tile[static_cast<std::size_t>(r * w.cols + c)],
                  dem.at(w.row0 + r, w.col0 + c))
            << "tile " << id << " local (" << r << "," << c << ")";
      }
    }
  }
}

TEST(CompressedRaster, ByteAccountingIsConsistent) {
  const DemRaster dem = test::random_raster(100, 100, 3, 100);
  const BqCompressedRaster comp = BqCompressedRaster::encode(dem, 50);
  EXPECT_EQ(comp.raw_bytes(), 100u * 100u * sizeof(CellValue));
  EXPECT_GT(comp.compressed_bytes(), 0u);
}

}  // namespace
}  // namespace zh
