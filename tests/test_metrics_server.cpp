// Prometheus exposition + embedded /metrics server: the renderer's
// output passes the shared format linter, the linter catches the
// defects it exists for (bad names, missing TYPE, duplicate series),
// and the HTTP server answers real loopback GETs with quantile series
// while recording its own serve.* metrics. Obs* suite names keep this
// file in the TSan matrix (the server test runs a background thread).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "obs/metrics_server.hpp"

namespace zh {
namespace {

struct ObsGuard {
  ObsGuard() {
    obs::set_metrics_enabled(false);
    obs::metrics_reset();
  }
  ~ObsGuard() {
    obs::set_metrics_enabled(false);
    obs::metrics_reset();
  }
};

/// Blocking one-shot HTTP GET against 127.0.0.1:port; returns the full
/// response (status line + headers + body), empty string on failure.
std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  std::size_t sent = 0;
  while (sent < req.size()) {
    const ssize_t n = ::send(fd, req.data() + sent, req.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return {};
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

void populate_registry() {
  obs::set_metrics_enabled(true);
  const obs::MetricId hits =
      obs::metric_id("cache.hits", obs::MetricKind::kCounter);
  const obs::MetricId misses =
      obs::metric_id("cache.misses", obs::MetricKind::kCounter);
  const obs::MetricId bytes =
      obs::metric_id("cache.bytes", obs::MetricKind::kGaugeSet);
  const obs::MetricId query =
      obs::metric_id("latency.query", obs::MetricKind::kLatency);
  obs::counter_add(hits, 75);
  obs::counter_add(misses, 25);
  obs::gauge_set(bytes, 1 << 20);
  for (int i = 1; i <= 200; ++i) obs::latency_record(query, i * 1e-4);
}

TEST(ObsExposition, FamilyNameMapping) {
  using obs::MetricKind;
  EXPECT_EQ(obs::prometheus_family_name("cache.hits", MetricKind::kCounter),
            "zh_cache_hits_total");
  EXPECT_EQ(obs::prometheus_family_name("cache.bytes", MetricKind::kGaugeSet),
            "zh_cache_bytes");
  EXPECT_EQ(obs::prometheus_family_name("latency.query", MetricKind::kLatency),
            "zh_query_latency_seconds");
  EXPECT_EQ(
      obs::prometheus_family_name("latency.journal_fsync",
                                  MetricKind::kLatency),
      "zh_journal_fsync_latency_seconds");
}

TEST(ObsExposition, RendersAndPassesOwnLinter) {
  ObsGuard guard;
  populate_registry();
  const std::string text =
      obs::prometheus_exposition(obs::metrics_snapshot());

  EXPECT_NE(text.find("# TYPE zh_cache_hits_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("zh_cache_hits_total 75"), std::string::npos);
  EXPECT_NE(text.find("# TYPE zh_query_latency_seconds summary"),
            std::string::npos);
  EXPECT_NE(text.find("zh_query_latency_seconds{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("zh_query_latency_seconds_count 200"),
            std::string::npos);
  // Derived hit-rate: 75 / (75 + 25).
  EXPECT_NE(text.find("zh_cache_hit_rate 0.75"), std::string::npos);

  const std::vector<std::string> problems = obs::lint_exposition(text);
  for (const std::string& p : problems) ADD_FAILURE() << p;
}

TEST(ObsExposition, WindowedSeriesRenderWhenWindowAttached) {
  ObsGuard guard;
  populate_registry();
  obs::RollingWindow win(120.0, 16);
  win.push(0.0, obs::metrics_snapshot());
  const obs::MetricId hits =
      obs::metric_id("cache.hits", obs::MetricKind::kCounter);
  const obs::MetricId query =
      obs::metric_id("latency.query", obs::MetricKind::kLatency);
  obs::counter_add(hits, 600);
  for (int i = 0; i < 10; ++i) obs::latency_record(query, 2.0);
  win.push(60.0, obs::metrics_snapshot());

  obs::ExpositionOptions opts;
  opts.window = &win;
  opts.window_seconds = 60.0;
  opts.now_seconds = 60.0;
  const std::string text =
      obs::prometheus_exposition(obs::metrics_snapshot(), opts);

  // 600 more hits over the trailing 60 s -> 10/s. The rate series is a
  // gauge, so the counter's _total suffix intentionally drops.
  EXPECT_NE(text.find("zh_cache_hits_rate{window=\"60s\"} 10"),
            std::string::npos);
  EXPECT_NE(
      text.find("zh_query_latency_seconds_window{window=\"60s\",quantile="),
      std::string::npos);
  const std::vector<std::string> problems = obs::lint_exposition(text);
  for (const std::string& p : problems) ADD_FAILURE() << p;
}

TEST(ObsExpositionLint, CatchesInjectedDefects) {
  const std::string good =
      "# HELP zh_x_total help\n"
      "# TYPE zh_x_total counter\n"
      "zh_x_total 1\n";
  EXPECT_TRUE(obs::lint_exposition(good).empty());

  // Illegal metric name (leading digit).
  EXPECT_FALSE(obs::lint_exposition("# HELP 9bad h\n# TYPE 9bad counter\n"
                                    "9bad 1\n")
                   .empty());
  // Sample without a TYPE line.
  EXPECT_FALSE(obs::lint_exposition("zh_untyped 1\n").empty());
  // Duplicate series (same name + label set).
  EXPECT_FALSE(obs::lint_exposition(good + "zh_x_total 2\n").empty());
  // Unparsable sample value.
  EXPECT_FALSE(obs::lint_exposition("# HELP zh_y h\n# TYPE zh_y gauge\n"
                                    "zh_y banana\n")
                   .empty());
  // Malformed label syntax.
  EXPECT_FALSE(obs::lint_exposition("# HELP zh_z h\n# TYPE zh_z gauge\n"
                                    "zh_z{oops 1\n")
                   .empty());
  // Empty exposition is a problem, not a pass.
  EXPECT_FALSE(obs::lint_exposition("").empty());
}

TEST(ObsServe, MetricsAndHealthOverLoopback) {
  ObsGuard guard;
  populate_registry();

  obs::MetricsServerOptions opt;
  opt.port = 0;  // ephemeral
  opt.tick_seconds = 0.01;
  obs::MetricsServer server(opt);
  ASSERT_NE(server.port(), 0);

  const std::string health = http_get(server.port(), "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_NE(health.find("ok"), std::string::npos);

  const std::string response = http_get(server.port(), "/metrics");
  ASSERT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  const std::size_t body_at = response.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  const std::string body = response.substr(body_at + 4);

  EXPECT_NE(body.find("zh_query_latency_seconds{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(body.find("zh_cache_hit_rate 0.75"), std::string::npos);
  const std::vector<std::string> problems = obs::lint_exposition(body);
  for (const std::string& p : problems) ADD_FAILURE() << p;

  const std::string missing = http_get(server.port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);

#if defined(ZH_ENABLE_OBS)
  // The server's own serve.* metrics show up on the NEXT scrape. They
  // go through the instrumentation macros, so the ZH_OBS=OFF flavor
  // (macros compiled to no-ops) legitimately serves without them.
  const std::string again = http_get(server.port(), "/metrics");
  EXPECT_NE(again.find("zh_serve_scrapes_total"), std::string::npos);
  EXPECT_NE(again.find("zh_serve_http_errors_total 1"), std::string::npos);
#endif

  server.stop();
  server.stop();  // idempotent
  EXPECT_TRUE(http_get(server.port(), "/metrics").empty());
}

TEST(ObsServe, RenderMatchesScrapeAndSurvivesConcurrentRecords) {
  ObsGuard guard;
  populate_registry();
  obs::MetricsServerOptions opt;
  opt.port = 0;
  opt.tick_seconds = 0.005;
  obs::MetricsServer server(opt);

  // Recorders run while the background thread ticks and render() is
  // called -- TSan cross-checks the registry/window locking.
  const obs::MetricId query =
      obs::metric_id("latency.query", obs::MetricKind::kLatency);
  std::thread recorder([query] {
    for (int i = 0; i < 5000; ++i) obs::latency_record(query, 1e-3);
  });
  for (int i = 0; i < 20; ++i) {
    const std::string text = server.render();
    EXPECT_NE(text.find("zh_query_latency_seconds_count"),
              std::string::npos);
    EXPECT_TRUE(obs::lint_exposition(text).empty());
  }
  recorder.join();

  const std::string text = server.render();
  EXPECT_NE(text.find("zh_query_latency_seconds_count 5200"),
            std::string::npos);
}

}  // namespace
}  // namespace zh
