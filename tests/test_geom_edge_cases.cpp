// Geometry corner cases: the degenerate configurations ray-crossing
// code is notorious for (horizontal edges on the test row, vertices on
// the ray, needle polygons, coordinate extremes).
#include <gtest/gtest.h>

#include "data/county_synth.hpp"
#include "geom/classify.hpp"
#include "geom/pip.hpp"
#include "geom/soa.hpp"
#include "geom/wkt.hpp"
#include "test_util.hpp"

namespace zh {
namespace {

TEST(PipEdgeCases, HorizontalEdgeOnTestRow) {
  // Rectangle whose bottom edge lies exactly on the ray through y = 1.
  const Polygon p({{{0, 1}, {4, 1}, {4, 3}, {0, 3}}});
  // Points on the interior side of the horizontal edge's row.
  EXPECT_TRUE(point_in_polygon(p, {2.0, 2.0}));
  // Points on the edge's own row, left and right of the rectangle: the
  // half-open rule must count the two vertical crossings consistently.
  EXPECT_FALSE(point_in_polygon(p, {-1.0, 1.0}) &&
               point_in_polygon(p, {5.0, 1.0}));
  // Above the top edge's row: outside.
  EXPECT_FALSE(point_in_polygon(p, {2.0, 3.5}));
}

TEST(PipEdgeCases, RayThroughVertexCountsOnce) {
  // Triangle with a vertex exactly at the test row: the (y0<=py<y1)
  // half-open rule must not double count the two edges meeting there.
  const Polygon tri({{{0, 0}, {4, 2}, {0, 4}}});
  EXPECT_TRUE(point_in_polygon(tri, {1.0, 2.0}));   // inside, same row
  EXPECT_FALSE(point_in_polygon(tri, {5.0, 2.0}));  // right of the apex
  EXPECT_FALSE(point_in_polygon(tri, {-1.0, 2.0})); // outside-left
}

TEST(PipEdgeCases, NeedlePolygon) {
  const Polygon needle({{{0, 0}, {10, 0.001}, {0, 0.002}}});
  EXPECT_TRUE(point_in_polygon(needle, {1.0, 0.001}));
  EXPECT_FALSE(point_in_polygon(needle, {1.0, 0.1}));
  EXPECT_FALSE(point_in_polygon(needle, {11.0, 0.001}));
}

TEST(PipEdgeCases, TinyPolygonFarFromOrigin) {
  // Large coordinates stress the intercept arithmetic.
  const double base = 1e7;
  const Polygon p({{{base, base}, {base + 0.002, base},
                    {base + 0.002, base + 0.002}, {base, base + 0.002}}});
  EXPECT_TRUE(point_in_polygon(p, {base + 0.001, base + 0.001}));
  EXPECT_FALSE(point_in_polygon(p, {base + 0.01, base + 0.001}));
}

TEST(PipEdgeCases, NegativeCoordinates) {
  const Polygon p({{{-10, -10}, {-5, -10}, {-5, -5}, {-10, -5}}});
  EXPECT_TRUE(point_in_polygon(p, {-7.5, -7.5}));
  EXPECT_FALSE(point_in_polygon(p, {-4.0, -7.5}));
  // SoA form agrees even with negative data (sentinel is (0,0)).
  PolygonSet set;
  set.add(p);
  const PolygonSoA soa = PolygonSoA::build(set);
  EXPECT_TRUE(point_in_polygon_soa(soa, 0, -7.5, -7.5));
  EXPECT_FALSE(point_in_polygon_soa(soa, 0, -4.0, -7.5));
}

TEST(PipEdgeCases, ManyRings) {
  // Ten concentric square rings: parity alternates inside each band.
  Polygon p;
  for (int k = 0; k < 10; ++k) {
    const double r = 20.0 - k;
    p.add_ring({{-r, -r}, {r, -r}, {r, r}, {-r, r}});
  }
  for (int k = 0; k < 9; ++k) {
    const double x = 20.0 - k - 0.5;  // inside band k
    EXPECT_EQ(point_in_polygon(p, {x, 0.1}), k % 2 == 0) << "band " << k;
  }
  PolygonSet set;
  set.add(p);
  const PolygonSoA soa = PolygonSoA::build(set);
  for (int k = 0; k < 9; ++k) {
    const double x = 20.0 - k - 0.5;
    EXPECT_EQ(point_in_polygon_soa(soa, 0, x, 0.1), k % 2 == 0);
  }
}

TEST(ClassifyEdgeCases, TileExactlyMatchingPolygon) {
  const Polygon square({{{2, 2}, {4, 2}, {4, 4}, {2, 4}}});
  // Box identical to the polygon: edges touch -> intersect.
  EXPECT_EQ(classify_box(square, GeoBox{2, 2, 4, 4}),
            TileRelation::kIntersect);
  // Box strictly inside.
  EXPECT_EQ(classify_box(square, GeoBox{2.5, 2.5, 3.5, 3.5}),
            TileRelation::kInside);
  // Box sharing one edge only.
  EXPECT_EQ(classify_box(square, GeoBox{4, 2, 6, 4}),
            TileRelation::kIntersect);
}

TEST(ClassifyEdgeCases, ZeroAreaBox) {
  const Polygon square({{{2, 2}, {4, 2}, {4, 4}, {2, 4}}});
  // Degenerate (line/point) boxes still classify consistently.
  EXPECT_EQ(classify_box(square, GeoBox{3, 3, 3, 3}),
            TileRelation::kInside);
  EXPECT_EQ(classify_box(square, GeoBox{10, 10, 10, 10}),
            TileRelation::kOutside);
}

TEST(SoaEdgeCases, CountyLayerWithHolesFlattensAndAgrees) {
  // The real multi-ring generator output, cross-checked object vs SoA
  // on a dense grid.
  CountyParams cp;
  cp.grid_x = 3;
  cp.grid_y = 3;
  cp.hole_every = 2;
  const PolygonSet zones =
      generate_counties(GeoBox{0.5, 0.5, 9.5, 9.5}, cp);
  const PolygonSoA soa = PolygonSoA::build(zones);
  for (PolygonId z = 0; z < zones.size(); ++z) {
    for (double y = 0.7; y < 9.5; y += 0.83) {
      for (double x = 0.7; x < 9.5; x += 0.79) {
        ASSERT_EQ(point_in_polygon(zones[z], {x, y}),
                  point_in_polygon_soa(soa, z, x, y))
            << "zone " << z << " at " << x << "," << y;
      }
    }
  }
}

TEST(WktEdgeCases, WhitespaceAndCaseTolerance) {
  const Polygon a = parse_wkt("  PoLyGoN(( 0 0 ,4 0, 4 4 ,0 4 , 0 0 ))  ");
  EXPECT_DOUBLE_EQ(a.area(), 16.0);
  const Polygon b = parse_wkt("POLYGON((0 0,4 0,4 4,0 4))");
  EXPECT_DOUBLE_EQ(b.area(), 16.0);
}

}  // namespace
}  // namespace zh
