#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "core/pipeline.hpp"
#include "device/device.hpp"

namespace zh {
namespace {

TEST(DeviceProfile, PaperPresetsMatchPublishedSpecs) {
  // Sec. IV.B: Kepler has 6x the cores (2688 vs 448) and 2x the memory
  // bandwidth (288.4 vs 144 GB/s) of the Fermi device.
  const DeviceProfile fermi = DeviceProfile::quadro6000();
  const DeviceProfile kepler = DeviceProfile::gtx_titan();
  EXPECT_EQ(fermi.cuda_cores, 448u);
  EXPECT_EQ(kepler.cuda_cores, 2688u);
  EXPECT_EQ(kepler.cuda_cores / fermi.cuda_cores, 6u);
  EXPECT_DOUBLE_EQ(kepler.mem_bandwidth_gbs / fermi.mem_bandwidth_gbs,
                   288.4 / 144.0);
  // Both experiment GPUs have at least 5 GB device memory (Sec. III.A's
  // 50 MB per-tile histogram budget depends on it).
  EXPECT_GE(fermi.device_memory_gb, 5.0);
  EXPECT_GE(kepler.device_memory_gb, 5.0);
  EXPECT_EQ(DeviceProfile::k20().architecture, "Kepler");
}

TEST(Device, LaunchRunsEveryBlockOnce) {
  Device dev;
  const std::uint32_t grid = 1000;
  std::vector<std::atomic<int>> hits(grid);
  dev.launch(grid, [&](const BlockContext& ctx) {
    hits[ctx.block_id()].fetch_add(1, std::memory_order_relaxed);
    EXPECT_EQ(ctx.grid_dim(), grid);
  });
  for (std::uint32_t b = 0; b < grid; ++b) {
    ASSERT_EQ(hits[b].load(), 1) << "block " << b;
  }
}

TEST(Device, LaunchZeroGridIsNoop) {
  Device dev;
  bool ran = false;
  dev.launch(0, [&](const BlockContext&) { ran = true; });
  EXPECT_FALSE(ran);
  EXPECT_EQ(dev.stats().kernels_launched.load(), 0u);
}

TEST(Device, StridedVisitsAllIndicesOnce) {
  BlockContext ctx(0, 1, 256);
  std::vector<int> hits(1000, 0);
  ctx.strided(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(Device, StridedHandlesSmallAndEmptyRanges) {
  BlockContext ctx(0, 1, 256);
  int count = 0;
  ctx.strided(0, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 0);
  ctx.strided(3, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 3);
}

TEST(Device, StatsCountLaunchesAndBlocks) {
  Device dev;
  dev.launch(10, [](const BlockContext&) {});
  dev.launch(5, [](const BlockContext&) {});
  EXPECT_EQ(dev.stats().kernels_launched.load(), 2u);
  EXPECT_EQ(dev.stats().blocks_executed.load(), 15u);
  dev.stats().reset();
  EXPECT_EQ(dev.stats().blocks_executed.load(), 0u);
}

TEST(Device, BufferTransfersAreAccounted) {
  Device dev;
  std::vector<std::uint32_t> host(1024, 7);
  DeviceBuffer<std::uint32_t> buf =
      dev.to_device(std::span<const std::uint32_t>(host));
  EXPECT_EQ(buf.size(), host.size());
  EXPECT_EQ(buf[13], 7u);
  EXPECT_EQ(dev.stats().bytes_h2d.load(), host.size() * 4);

  buf[13] = 99;
  const std::vector<std::uint32_t> back = dev.to_host(buf);
  EXPECT_EQ(back[13], 99u);
  EXPECT_EQ(back[14], 7u);
  EXPECT_EQ(dev.stats().bytes_d2h.load(), host.size() * 4);
}

TEST(Device, ModeledTransferTimeUsesPcieBandwidth) {
  Device dev(DeviceProfile::gtx_titan());
  // 2.5 GB at 2.5 GB/s -> 1 second (the paper's transfer-cost arithmetic).
  EXPECT_NEAR(dev.modeled_h2d_seconds(2'500'000'000ull), 1.0, 1e-9);
}

TEST(Device, AtomicAddOnRawCounter) {
  BinCount slot = 0;
  atomic_add(&slot, 3);
  atomic_add(&slot);
  EXPECT_EQ(slot, 4u);
}

TEST(Device, ConcurrentAtomicAddsDoNotLoseUpdates) {
  Device dev;
  BinCount counter = 0;
  const std::uint32_t grid = 64;
  const int per_block = 1000;
  dev.launch(grid, [&](const BlockContext&) {
    for (int i = 0; i < per_block; ++i) atomic_add(&counter);
  });
  EXPECT_EQ(counter, grid * static_cast<BinCount>(per_block));
}

TEST(Device, RejectsZeroBlockDim) {
  Device dev;
  EXPECT_THROW(dev.launch(1, 0, [](const BlockContext&) {}),
               InvalidArgument);
}

}  // namespace
}  // namespace zh

namespace zh {
namespace {

TEST(DeviceProfiles, NamedLaunchesAccumulate) {
  Device dev;
  dev.launch_named("alpha", 10, [](const BlockContext&) {});
  dev.launch_named("alpha", 5, [](const BlockContext&) {});
  dev.launch_named("beta", 3, [](const BlockContext&) {});
  const auto profiles = dev.kernel_profiles();
  ASSERT_EQ(profiles.size(), 2u);
  EXPECT_EQ(profiles.at("alpha").launches, 2u);
  EXPECT_EQ(profiles.at("alpha").blocks, 15u);
  EXPECT_GE(profiles.at("alpha").seconds, 0.0);
  EXPECT_EQ(profiles.at("beta").launches, 1u);
}

TEST(DeviceProfiles, PipelineKernelsAppearInProfile) {
  Device dev;
  DemRaster raster(40, 40, GeoTransform(0.0, 4.0, 0.1, 0.1));
  for (CellValue& v : raster.cells()) v = 3;
  PolygonSet zones;
  zones.add(Polygon({{{0.3, 0.3}, {3.7, 0.3}, {3.7, 3.7}, {0.3, 3.7}}}));
  const ZonalPipeline pipe(dev, {.tile_size = 8, .bins = 10});
  (void)pipe.run(raster, zones);
  const auto profiles = dev.kernel_profiles();
  EXPECT_TRUE(profiles.count("CellAggrKernel"));
  EXPECT_TRUE(profiles.count("UpdateHistKernel"));
  EXPECT_TRUE(profiles.count("pip_test_kernel"));
  EXPECT_EQ(profiles.at("CellAggrKernel").blocks, 25u);  // 5x5 tiles
}

}  // namespace
}  // namespace zh
