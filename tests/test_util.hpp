// Shared helpers for the test suite: seeded random rasters and random
// simple polygons (star polygons are simple by construction, so PIP
// ground truth is well-defined).
#pragma once

#include <algorithm>
#include <cmath>
#include <numbers>
#include <random>
#include <vector>

#include "geom/polygon.hpp"
#include "grid/raster.hpp"

namespace zh::test {

/// Deterministic random raster with values in [0, max_value].
inline DemRaster random_raster(std::int64_t rows, std::int64_t cols,
                               std::uint32_t seed, CellValue max_value,
                               const GeoTransform& t = GeoTransform()) {
  DemRaster r(rows, cols, t);
  std::mt19937 rng(seed);
  std::uniform_int_distribution<std::uint32_t> dist(0, max_value);
  for (CellValue& v : r.cells()) v = static_cast<CellValue>(dist(rng));
  return r;
}

/// Random simple (star-shaped) ring around (cx, cy): vertices at sorted
/// angles with radii in [r_min, r_max].
inline Ring random_star_ring(std::mt19937& rng, double cx, double cy,
                             double r_min, double r_max, int vertices) {
  std::uniform_real_distribution<double> radius(r_min, r_max);
  std::vector<double> angles(static_cast<std::size_t>(vertices));
  std::uniform_real_distribution<double> angle(0.0,
                                               2.0 * std::numbers::pi);
  for (double& a : angles) a = angle(rng);
  std::sort(angles.begin(), angles.end());
  Ring ring;
  ring.reserve(angles.size());
  for (const double a : angles) {
    const double r = radius(rng);
    ring.push_back({cx + r * std::cos(a), cy + r * std::sin(a)});
  }
  return ring;
}

/// Random star polygon, optionally with a concentric hole (multi-ring).
inline Polygon random_star_polygon(std::mt19937& rng, double cx, double cy,
                                   double r_max, int vertices,
                                   bool with_hole = false) {
  Polygon poly({random_star_ring(rng, cx, cy, 0.5 * r_max, r_max,
                                 vertices)});
  if (with_hole) {
    // Hole oriented clockwise so winding-number semantics agree with
    // even-odd parity (parity itself is orientation-independent).
    Ring hole = random_star_ring(rng, cx, cy, 0.1 * r_max, 0.3 * r_max,
                                 std::max(3, vertices / 2));
    std::reverse(hole.begin(), hole.end());
    poly.add_ring(std::move(hole));
  }
  return poly;
}

/// A small set of star polygons scattered over `extent`.
inline PolygonSet random_polygon_set(std::uint32_t seed,
                                     const GeoBox& extent, int count,
                                     bool holes_every_other = false) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> ux(extent.min_x, extent.max_x);
  std::uniform_real_distribution<double> uy(extent.min_y, extent.max_y);
  std::uniform_int_distribution<int> nverts(5, 24);
  const double r_max =
      0.25 * std::min(extent.width(), extent.height());
  PolygonSet set;
  for (int i = 0; i < count; ++i) {
    const bool hole = holes_every_other && (i % 2 == 1);
    set.add(random_star_polygon(rng, ux(rng), uy(rng), r_max, nverts(rng),
                                hole));
  }
  return set;
}

}  // namespace zh::test
