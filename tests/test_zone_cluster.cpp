#include <gtest/gtest.h>

#include <random>

#include "core/zone_cluster.hpp"

namespace zh {
namespace {

/// Histograms in three well-separated families: low bins, mid bins,
/// high bins. Sizes vary wildly so normalization matters.
HistogramSet separable_zones(std::uint32_t seed) {
  HistogramSet h(12, 90);
  std::mt19937 rng(seed);
  std::uniform_int_distribution<BinCount> size(50, 5000);
  for (std::size_t z = 0; z < 12; ++z) {
    const std::size_t family = z % 3;  // 0:low 1:mid 2:high
    const BinIndex base = static_cast<BinIndex>(family * 30);
    std::uniform_int_distribution<BinIndex> bin(base, base + 14);
    const BinCount n = size(rng);
    for (BinCount i = 0; i < n; ++i) h.of(z)[bin(rng)] += 1;
  }
  return h;
}

TEST(HistogramDistance, MetricBasics) {
  HistogramSet h(3, 10);
  h.of(0)[2] = 4;
  h.of(1)[2] = 400;  // same shape, different mass
  h.of(2)[7] = 4;    // disjoint shape
  EXPECT_DOUBLE_EQ(histogram_distance(h.of(0), h.of(0)), 0.0);
  EXPECT_DOUBLE_EQ(histogram_distance(h.of(0), h.of(1)), 0.0);  // normalized
  EXPECT_DOUBLE_EQ(histogram_distance(h.of(0), h.of(2)), 2.0);  // disjoint
  EXPECT_DOUBLE_EQ(histogram_distance(h.of(0), h.of(2)),
                   histogram_distance(h.of(2), h.of(0)));
  // Unnormalized: raw L1.
  EXPECT_DOUBLE_EQ(histogram_distance(h.of(0), h.of(1), false), 396.0);
}

TEST(HistogramDistance, EmptyHistograms) {
  HistogramSet h(2, 5);
  h.of(1)[0] = 3;
  EXPECT_DOUBLE_EQ(histogram_distance(h.of(0), h.of(0)), 0.0);
  EXPECT_DOUBLE_EQ(histogram_distance(h.of(0), h.of(1)), 1.0);
}

TEST(ZoneCluster, RecoversSeparableFamilies) {
  const HistogramSet h = separable_zones(5);
  const ZoneClustering c = cluster_zones(h, {.k = 3});
  ASSERT_EQ(c.assignment.size(), 12u);
  ASSERT_EQ(c.medoids.size(), 3u);
  // All zones of one family share a cluster; different families differ.
  for (std::size_t a = 0; a < 12; ++a) {
    for (std::size_t b = 0; b < 12; ++b) {
      if (a % 3 == b % 3) {
        EXPECT_EQ(c.assignment[a], c.assignment[b])
            << "zones " << a << " and " << b;
      } else {
        EXPECT_NE(c.assignment[a], c.assignment[b])
            << "zones " << a << " and " << b;
      }
    }
  }
  EXPECT_GT(c.iterations, 0);
}

TEST(ZoneCluster, Deterministic) {
  const HistogramSet h = separable_zones(9);
  const ZoneClustering a = cluster_zones(h, {.k = 4});
  const ZoneClustering b = cluster_zones(h, {.k = 4});
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.medoids, b.medoids);
  EXPECT_DOUBLE_EQ(a.total_cost, b.total_cost);
}

TEST(ZoneCluster, KEqualsNMakesEveryZoneItsOwnMedoid) {
  const HistogramSet h = separable_zones(3);
  const ZoneClustering c = cluster_zones(h, {.k = 12});
  EXPECT_DOUBLE_EQ(c.total_cost, 0.0);
}

TEST(ZoneCluster, SingleClusterCoversAll) {
  const HistogramSet h = separable_zones(4);
  const ZoneClustering c = cluster_zones(h, {.k = 1});
  for (const std::uint32_t a : c.assignment) EXPECT_EQ(a, 0u);
}

TEST(ZoneCluster, InvalidKThrows) {
  const HistogramSet h = separable_zones(1);
  EXPECT_THROW(cluster_zones(h, {.k = 0}), InvalidArgument);
  EXPECT_THROW(cluster_zones(h, {.k = 13}), InvalidArgument);
}

}  // namespace
}  // namespace zh
