// QueryEngine correctness: every cached-path result must be bit-identical
// to a fresh ZonalPipeline::run on the same inputs (DESIGN.md §9). The
// cache is an optimization, never an approximation -- warm queries skip
// the Step-1 cell scan but produce the exact same histograms.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "core/pipeline.hpp"
#include "core/query_engine.hpp"
#include "data/county_synth.hpp"
#include "data/dem_synth.hpp"
#include "test_util.hpp"

namespace zh {
namespace {

DemRaster make_raster(std::uint32_t seed) {
  return generate_dem(90, 110, GeoTransform(0.0, 9.0, 0.1, 0.1),
                      {.seed = seed, .max_value = 99});
}

PolygonSet make_zones(std::uint32_t seed, bool holes = false) {
  return test::random_polygon_set(seed, GeoBox{0.5, 0.5, 10.5, 8.5}, 8, holes);
}

/// Tessellating zones: large enough that many tiles are fully inside,
/// which is what exercises the Step-1 cache (inside pairs demand tile
/// histograms; intersect pairs go straight to Step-4 refinement).
PolygonSet make_county_zones(std::uint64_t seed) {
  CountyParams cp;
  cp.seed = seed;
  cp.grid_x = 3;
  cp.grid_y = 3;
  return generate_counties(GeoBox{-0.4, -0.4, 11.4, 9.4}, cp);
}

QueryEngineConfig small_config() {
  QueryEngineConfig cfg;
  cfg.tile_size = 8;
  return cfg;
}

TEST(QueryEngine, MatchesZonalPipelineBitExactly) {
  Device dev;
  const DemRaster raster = make_raster(11);
  const PolygonSet zones = make_zones(101, /*holes=*/true);

  QueryEngine engine(dev, small_config());
  const RasterHandle h = engine.add_raster(raster);
  const QueryResult got =
      engine.run({.raster = h, .zones = &zones, .bins = 100});

  const ZonalPipeline pipe(dev, {.tile_size = 8, .bins = 100});
  const ZonalResult want = pipe.run(raster, zones);
  EXPECT_EQ(got.per_polygon, want.per_polygon);
  EXPECT_EQ(got.work.pairs_inside, want.work.pairs_inside);
  EXPECT_EQ(got.work.pairs_intersect, want.work.pairs_intersect);
  EXPECT_EQ(got.work.cells_in_polygons, want.work.cells_in_polygons);
}

TEST(QueryEngine, RepeatedQueryHitsCacheAndStaysIdentical) {
  Device dev;
  const DemRaster raster = make_raster(12);
  const PolygonSet zones = make_county_zones(102);

  QueryEngine engine(dev, small_config());
  const RasterHandle h = engine.add_raster(raster);
  const ZonalQuery q{.raster = h, .zones = &zones, .bins = 100};

  const QueryResult cold = engine.run(q);
  const QueryResult warm = engine.run(q);
  EXPECT_EQ(warm.per_polygon, cold.per_polygon);

  // Cold run: every demanded tile was a miss; warm run: every one a hit.
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_GT(cold.cache_misses, 0u);
  EXPECT_EQ(warm.cache_misses, 0u);
  EXPECT_EQ(warm.cache_hits, cold.cache_misses);
  // A fully warm query histogrammed zero raster cells (Step-1 skipped).
  EXPECT_GT(cold.work.cells_total, 0u);
  EXPECT_EQ(warm.work.cells_total, 0u);
}

TEST(QueryEngine, BatchMatchesIndependentRunsWithSharing) {
  Device dev;
  const DemRaster raster = make_raster(13);
  const PolygonSet zones_a = make_county_zones(103);
  const PolygonSet zones_b = make_county_zones(104);

  QueryEngine engine(dev, small_config());
  const RasterHandle h = engine.add_raster(raster);
  const std::vector<ZonalQuery> batch = {
      {.raster = h, .zones = &zones_a, .bins = 100},
      {.raster = h, .zones = &zones_b, .bins = 100},
  };
  const std::vector<QueryResult> results = engine.run_batch(batch);
  ASSERT_EQ(results.size(), 2u);

  // Bit-identical to two independent pipeline runs.
  const ZonalPipeline pipe(dev, {.tile_size = 8, .bins = 100});
  EXPECT_EQ(results[0].per_polygon, pipe.run(raster, zones_a).per_polygon);
  EXPECT_EQ(results[1].per_polygon, pipe.run(raster, zones_b).per_polygon);

  // Different zone layers over the same raster share tile histograms:
  // the second query must hit on every tile the first already filled.
  EXPECT_EQ(results[0].cache_hits, 0u);
  EXPECT_GT(results[1].cache_hits, 0u);
  EXPECT_LT(results[1].cache_misses, results[1].cache_hits +
                                         results[1].cache_misses);
  const TileCacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.hits, results[1].cache_hits);
  EXPECT_EQ(stats.misses, results[0].cache_misses + results[1].cache_misses);
}

TEST(QueryEngine, DistinctBinningsDoNotAlias) {
  Device dev;
  const DemRaster raster = make_raster(14);
  const PolygonSet zones = make_zones(105);

  QueryEngine engine(dev, small_config());
  const RasterHandle h = engine.add_raster(raster);
  const QueryResult a = engine.run({.raster = h, .zones = &zones, .bins = 100});
  const QueryResult b = engine.run({.raster = h, .zones = &zones, .bins = 50});
  // Different bin counts: no entry sharing, both all-miss.
  EXPECT_EQ(a.cache_hits, 0u);
  EXPECT_EQ(b.cache_hits, 0u);

  Device dev2;
  const ZonalPipeline pipe50(dev2, {.tile_size = 8, .bins = 50});
  EXPECT_EQ(b.per_polygon, pipe50.run(raster, zones).per_polygon);
}

TEST(QueryEngine, DistinctRastersDoNotAlias) {
  Device dev;
  const DemRaster r1 = make_raster(15);
  const DemRaster r2 = make_raster(16);
  const PolygonSet zones = make_zones(106);

  QueryEngine engine(dev, small_config());
  const RasterHandle h1 = engine.add_raster(r1);
  const RasterHandle h2 = engine.add_raster(r2);
  EXPECT_EQ(engine.raster_count(), 2u);

  const QueryResult a = engine.run({.raster = h1, .zones = &zones, .bins = 100});
  const QueryResult b = engine.run({.raster = h2, .zones = &zones, .bins = 100});
  EXPECT_EQ(b.cache_hits, 0u);  // content differs -> different fingerprints
  (void)a;

  const ZonalPipeline pipe(dev, {.tile_size = 8, .bins = 100});
  EXPECT_EQ(b.per_polygon, pipe.run(r2, zones).per_polygon);
}

TEST(QueryEngine, EqualContentRastersShareEntries) {
  // Two registrations of byte-identical rasters fingerprint equally, so
  // the second query is fully warm even though the handles differ.
  Device dev;
  const DemRaster r1 = make_raster(17);
  const DemRaster r2 = r1;
  const PolygonSet zones = make_county_zones(107);

  QueryEngine engine(dev, small_config());
  const RasterHandle h1 = engine.add_raster(r1);
  const RasterHandle h2 = engine.add_raster(r2);
  const QueryResult cold = engine.run({.raster = h1, .zones = &zones, .bins = 100});
  const QueryResult warm = engine.run({.raster = h2, .zones = &zones, .bins = 100});
  EXPECT_EQ(warm.cache_hits, cold.cache_misses);
  EXPECT_EQ(warm.cache_misses, 0u);
  EXPECT_EQ(warm.per_polygon, cold.per_polygon);
}

TEST(QueryEngine, SurvivesTinyCacheBudgetByRefilling) {
  // A budget too small to keep the working set resident must degrade to
  // recomputation, never to wrong answers.
  Device dev;
  const DemRaster raster = make_raster(18);
  const PolygonSet zones = make_county_zones(108);

  QueryEngineConfig cfg = small_config();
  cfg.cache.budget_bytes = 4 << 10;  // a handful of tile histograms
  cfg.cache.shards = 1;
  QueryEngine engine(dev, cfg);
  const RasterHandle h = engine.add_raster(raster);
  const ZonalQuery q{.raster = h, .zones = &zones, .bins = 100};
  const QueryResult first = engine.run(q);
  const QueryResult second = engine.run(q);
  EXPECT_EQ(second.per_polygon, first.per_polygon);
  EXPECT_GT(engine.cache_stats().evictions, 0u);
  EXPECT_LE(engine.cache().bytes(), engine.cache().budget_bytes());

  const ZonalPipeline pipe(dev, {.tile_size = 8, .bins = 100});
  EXPECT_EQ(first.per_polygon, pipe.run(raster, zones).per_polygon);
}

TEST(QueryEngine, RejectsInvalidQueries) {
  Device dev;
  const DemRaster raster = make_raster(19);
  const PolygonSet zones = make_zones(109);
  QueryEngine engine(dev, small_config());
  const RasterHandle h = engine.add_raster(raster);

  EXPECT_THROW((void)engine.run({.raster = h + 1, .zones = &zones, .bins = 100}),
               InvalidArgument);
  EXPECT_THROW((void)engine.run({.raster = h, .zones = nullptr, .bins = 100}),
               InvalidArgument);
  EXPECT_THROW((void)engine.run({.raster = h, .zones = &zones, .bins = 0}),
               InvalidArgument);
}

TEST(QueryEngine, EmptyZoneSetYieldsEmptyResult) {
  Device dev;
  const DemRaster raster = make_raster(20);
  const PolygonSet zones;  // no polygons
  QueryEngine engine(dev, small_config());
  const RasterHandle h = engine.add_raster(raster);
  const QueryResult r = engine.run({.raster = h, .zones = &zones, .bins = 100});
  EXPECT_EQ(r.per_polygon.groups(), 0u);
  EXPECT_EQ(r.cache_misses, 0u);  // no demanded tiles
}

}  // namespace
}  // namespace zh
