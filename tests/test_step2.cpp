// Step 2 properties (DESIGN.md invariant 3 + Fig. 4 bookkeeping): tile
// classification is sound against per-cell PIP, and the grouped dispatch
// arrays are a lossless reorganization of the labeled pair list.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <type_traits>

#include "core/step2_pairing.hpp"
#include "primitives/primitives.hpp"
#include "geom/pip.hpp"
#include "test_util.hpp"

namespace zh {
namespace {

struct Workload {
  GeoTransform transform{0.0, 10.0, 0.1, 0.1};  // 100x100 cells over 10x10
  TilingScheme tiling{100, 100, 10};
  PolygonSet polygons;
};

Workload make_workload(std::uint32_t seed, int count, bool holes) {
  Workload w;
  w.polygons = test::random_polygon_set(seed, GeoBox{0.5, 0.5, 9.5, 9.5},
                                        count, holes);
  return w;
}

TEST(Step2, PairListClassificationIsSound) {
  const Workload w = make_workload(3, 12, true);
  const TilePolygonPairs pairs =
      pair_tiles_with_polygons(w.polygons, w.tiling, w.transform);

  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const Polygon& poly = w.polygons[pairs.polygon_ids[i]];
    const CellWindow win = w.tiling.tile_window(pairs.tile_ids[i]);
    bool all_in = true;
    bool any_in = false;
    for (std::int64_t r = win.row0; r < win.row0 + win.rows; ++r) {
      for (std::int64_t c = win.col0; c < win.col0 + win.cols; ++c) {
        const bool in =
            point_in_polygon(poly, w.transform.cell_center(r, c));
        all_in &= in;
        any_in |= in;
      }
    }
    if (pairs.relations[i] == TileRelation::kInside) {
      EXPECT_TRUE(all_in) << "inside tile has an outside cell center";
    }
    // kIntersect is conservative: no assertion on any_in, but the label
    // must never be kOutside (those are dropped from the list).
    EXPECT_NE(pairs.relations[i], TileRelation::kOutside);
  }
}

TEST(Step2, EveryInsideCellCenterIsCoveredByAPair) {
  // Completeness: any cell center inside a polygon must lie in some tile
  // paired with that polygon (otherwise the pipeline would drop it).
  const Workload w = make_workload(11, 8, false);
  const TilePolygonPairs pairs =
      pair_tiles_with_polygons(w.polygons, w.tiling, w.transform);

  std::set<std::pair<PolygonId, TileId>> paired;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    paired.emplace(pairs.polygon_ids[i], pairs.tile_ids[i]);
  }
  for (PolygonId pid = 0; pid < w.polygons.size(); ++pid) {
    for (std::int64_t r = 0; r < 100; r += 3) {
      for (std::int64_t c = 0; c < 100; c += 3) {
        if (!point_in_polygon(w.polygons[pid],
                              w.transform.cell_center(r, c))) {
          continue;
        }
        const TileId t =
            w.tiling.tile_id(r / w.tiling.tile_size(),
                             c / w.tiling.tile_size());
        ASSERT_TRUE(paired.count({pid, t}))
            << "cell (" << r << "," << c << ") of polygon " << pid
            << " not covered by any pair";
      }
    }
  }
}

TEST(Step2, GroupsAreALosslessReorganization) {
  const Workload w = make_workload(29, 15, true);
  TilePolygonPairs pairs =
      pair_tiles_with_polygons(w.polygons, w.tiling, w.transform);

  // Reference multiset per (relation, polygon).
  std::map<std::pair<int, PolygonId>, std::multiset<TileId>> expect;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    expect[{static_cast<int>(pairs.relations[i]), pairs.polygon_ids[i]}]
        .insert(pairs.tile_ids[i]);
  }

  const PairingResult res = build_pairing_groups(std::move(pairs));

  auto check = [&](const PolygonTileGroups& g, TileRelation rel) {
    ASSERT_EQ(g.pid_v.size(), g.num_v.size());
    ASSERT_EQ(g.pid_v.size(), g.pos_v.size());
    std::size_t covered = 0;
    for (std::size_t i = 0; i < g.pid_v.size(); ++i) {
      // pid_v strictly increasing: one group per polygon.
      if (i > 0) {
        ASSERT_LT(g.pid_v[i - 1], g.pid_v[i]);
      }
      ASSERT_EQ(g.pos_v[i], covered);
      std::multiset<TileId> tiles(
          g.tid_v.begin() + g.pos_v[i],
          g.tid_v.begin() + g.pos_v[i] + g.num_v[i]);
      ASSERT_EQ(tiles,
                (expect[{static_cast<int>(rel), g.pid_v[i]}]))
          << "relation " << static_cast<int>(rel) << " polygon "
          << g.pid_v[i];
      covered += g.num_v[i];
    }
    ASSERT_EQ(covered, g.tid_v.size());
  };
  check(res.inside, TileRelation::kInside);
  check(res.intersect, TileRelation::kIntersect);

  // Nothing lost: group pair counts sum to the labeled pair count.
  std::size_t expect_total = 0;
  for (const auto& [k, v] : expect) expect_total += v.size();
  EXPECT_EQ(res.inside.pair_count() + res.intersect.pair_count(),
            expect_total);
}

TEST(Step2, PolygonStraddlingLastTileRowAndColumnIsPaired) {
  // Regression: a polygon overhanging the bottom-right raster corner has
  // an MBB extending past the extent in both axes. tiles_covering must
  // clamp it onto the last tile row/column (never drop the edge tiles,
  // never wrap), and every interior cell center must stay covered.
  Workload w;
  w.polygons.add(Polygon(
      {{{9.52, -0.5}, {10.5, -0.5}, {10.5, 0.48}, {9.52, 0.48}}}));
  const std::vector<TileId> covered =
      w.tiling.tiles_covering(w.polygons[0].mbr(), w.transform);
  ASSERT_EQ(covered.size(), 1u);
  EXPECT_EQ(covered[0], w.tiling.tile_id(9, 9));

  const PairingResult res =
      pair_and_group(w.polygons, w.tiling, w.transform);
  EXPECT_EQ(res.candidate_pairs, 1u);
  EXPECT_EQ(res.inside.pair_count(), 0u);  // the tile is only partly in
  ASSERT_EQ(res.intersect.group_count(), 1u);
  ASSERT_EQ(res.intersect.pair_count(), 1u);
  EXPECT_EQ(res.intersect.tid_v[0], w.tiling.tile_id(9, 9));

  // The in-raster part of the polygon really holds cell centers (so the
  // pairing above is load-bearing, not vacuous).
  int inside = 0;
  for (std::int64_t r = 95; r < 100; ++r) {
    for (std::int64_t c = 95; c < 100; ++c) {
      inside += point_in_polygon(w.polygons[0],
                                 w.transform.cell_center(r, c));
    }
  }
  EXPECT_EQ(inside, 25);  // centers x in (9.52, 10.5), y in (-0.5, 0.48)
}

TEST(Step2, PolygonOutsideRasterYieldsNoPairs) {
  Workload w;
  w.polygons.add(Polygon({{{100, 100}, {101, 100}, {101, 101}}}));
  const TilePolygonPairs pairs =
      pair_tiles_with_polygons(w.polygons, w.tiling, w.transform);
  EXPECT_EQ(pairs.size(), 0u);
  const PairingResult res = build_pairing_groups(
      pair_tiles_with_polygons(w.polygons, w.tiling, w.transform));
  EXPECT_EQ(res.inside.group_count(), 0u);
  EXPECT_EQ(res.intersect.group_count(), 0u);
}

TEST(Step2, LargePolygonProducesInsideTiles) {
  Workload w;
  // Covers almost the whole raster: interior tiles must classify inside.
  w.polygons.add(Polygon({{{0.05, 0.05}, {9.95, 0.05}, {9.95, 9.95},
                           {0.05, 9.95}}}));
  const PairingResult res =
      pair_and_group(w.polygons, w.tiling, w.transform);
  ASSERT_EQ(res.inside.group_count(), 1u);
  EXPECT_GT(res.inside.pair_count(), 50u);   // 8x8 interior tiles at least
  ASSERT_EQ(res.intersect.group_count(), 1u);
  EXPECT_GT(res.intersect.pair_count(), 0u);
  EXPECT_EQ(res.candidate_pairs, 100u);  // MBB covers all 10x10 tiles
}

TEST(Step2, EmptyPolygonSet) {
  Workload w;
  const PairingResult res =
      pair_and_group(w.polygons, w.tiling, w.transform);
  EXPECT_EQ(res.candidate_pairs, 0u);
  EXPECT_EQ(res.inside.group_count(), 0u);
}

// Regression: num_v/pos_v were std::uint32_t while pair_count() is a
// size_t, so on large rasters x dense polygon sets the Fig.-4 exclusive
// scan silently wrapped past 2^32 pairs. Pinned two ways: the dispatch
// arrays' element type must stay 64-bit (compile-time), and the exact
// scan the grouping runs must carry offsets beyond 2^32 (allocating 4G+
// real pairs is infeasible in a unit test; the scan is where the wrap
// happened).
TEST(Step2Grouping, DispatchOffsetsSurviveFourBillionPairs) {
  static_assert(
      std::is_same_v<decltype(PolygonTileGroups::num_v)::value_type,
                     std::uint64_t>,
      "num_v must be 64-bit: tile counts feed the pos_v scan");
  static_assert(
      std::is_same_v<decltype(PolygonTileGroups::pos_v)::value_type,
                     std::uint64_t>,
      "pos_v must be 64-bit: offsets index a size_t-sized pair array");

  const std::vector<std::uint64_t> num = {3'000'000'000ull,
                                          2'000'000'000ull, 7ull};
  std::vector<std::uint64_t> pos(num.size());
  prim::exclusive_scan<std::uint64_t>(std::span<const std::uint64_t>(num),
                                      pos, 0);
  EXPECT_EQ(pos[0], 0ull);
  EXPECT_EQ(pos[1], 3'000'000'000ull);
  // 5'000'000'000 mod 2^32 == 705'032'704: the silent pre-fix value.
  EXPECT_EQ(pos[2], 5'000'000'000ull);
}

}  // namespace
}  // namespace zh
