#include <gtest/gtest.h>

#include <thread>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "common/types.hpp"

namespace zh {
namespace {

TEST(Types, DivUp) {
  EXPECT_EQ(div_up(0, 4), 0u);
  EXPECT_EQ(div_up(1, 4), 1u);
  EXPECT_EQ(div_up(4, 4), 1u);
  EXPECT_EQ(div_up(5, 4), 2u);
  EXPECT_EQ(div_up(8, 4), 2u);
  EXPECT_EQ(div_up(9, 4), 3u);
}

TEST(Types, TileRelationValuesMatchPaperEncoding) {
  // The paper encodes outside=0, inside=1, intersect=2.
  EXPECT_EQ(static_cast<int>(TileRelation::kOutside), 0);
  EXPECT_EQ(static_cast<int>(TileRelation::kInside), 1);
  EXPECT_EQ(static_cast<int>(TileRelation::kIntersect), 2);
}

TEST(Error, RequireThrowsWithMessage) {
  try {
    ZH_REQUIRE(1 == 2, "custom context ", 42);
    FAIL() << "should have thrown";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom context 42"), std::string::npos);
  }
}

TEST(Error, RequirePassesSilently) {
  EXPECT_NO_THROW(ZH_REQUIRE(true, "never"));
}

TEST(Error, IoErrorIsError) {
  EXPECT_THROW(throw IoError("x"), Error);
  EXPECT_THROW(throw InvalidArgument("x"), Error);
}

TEST(Timer, Monotonic) {
  Timer t;
  const double a = t.seconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const double b = t.seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GT(b, a);
  t.reset();
  EXPECT_LT(t.seconds(), b);
}

TEST(Timer, MillisConsistentWithSeconds) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  const double s = t.seconds();
  const double ms = t.millis();
  EXPECT_GE(ms, s * 1e3);  // millis read later, so at least as large
}

TEST(StepTimes, TotalsAndAccumulate) {
  StepTimes a;
  a.seconds = {1.0, 2.0, 0.5, 0.25, 4.0};
  a.overhead.transfer = 0.1;
  a.overhead.merge = 0.05;
  a.overhead.output = 0.1;
  EXPECT_DOUBLE_EQ(a.step_total(), 7.75);
  EXPECT_DOUBLE_EQ(a.overhead.total(), 0.25);
  EXPECT_DOUBLE_EQ(a.end_to_end(), 8.0);

  StepTimes b;
  b.seconds = {0.5, 0.5, 0.5, 0.5, 0.5};
  b.overhead.transfer = 0.25;
  b.overhead.output = 0.25;
  a += b;
  EXPECT_DOUBLE_EQ(a.seconds[0], 1.5);
  EXPECT_DOUBLE_EQ(a.seconds[4], 4.5);
  EXPECT_DOUBLE_EQ(a.overhead.transfer, 0.35);
  EXPECT_DOUBLE_EQ(a.overhead.merge, 0.05);
  EXPECT_DOUBLE_EQ(a.overhead.output, 0.35);
  EXPECT_DOUBLE_EQ(a.overhead.total(), 0.75);
}

TEST(StepTimes, MaxWithIsElementwise) {
  StepTimes a;
  a.seconds = {1, 5, 1, 5, 1};
  a.overhead.transfer = 2;
  a.overhead.merge = 1;
  StepTimes b;
  b.seconds = {2, 4, 2, 4, 2};
  b.overhead.transfer = 1;
  b.overhead.merge = 3;
  b.overhead.output = 0.5;
  const StepTimes m = a.max_with(b);
  EXPECT_DOUBLE_EQ(m.seconds[0], 2);
  EXPECT_DOUBLE_EQ(m.seconds[1], 5);
  EXPECT_DOUBLE_EQ(m.seconds[2], 2);
  EXPECT_DOUBLE_EQ(m.seconds[3], 5);
  EXPECT_DOUBLE_EQ(m.seconds[4], 2);
  // Overhead buckets reduce element-wise too, not as a lump.
  EXPECT_DOUBLE_EQ(m.overhead.transfer, 2);
  EXPECT_DOUBLE_EQ(m.overhead.merge, 3);
  EXPECT_DOUBLE_EQ(m.overhead.output, 0.5);
}

TEST(StepTimes, StepNamesMatchTable2Rows) {
  EXPECT_NE(StepTimes::step_name(0).find("decompression"),
            std::string::npos);
  EXPECT_NE(StepTimes::step_name(1).find("Per-tile"), std::string::npos);
  EXPECT_NE(StepTimes::step_name(4).find("Cell-in-polygon"),
            std::string::npos);
  EXPECT_EQ(StepTimes::step_name(99), "unknown step");
}

}  // namespace
}  // namespace zh
