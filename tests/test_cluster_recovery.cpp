// Straggler/failure recovery in the fault-tolerant cluster driver
// (DESIGN.md invariant 6 extended): any single-rank crash at any pipeline
// step leaves the merged histograms bit-identical to the fault-free
// single-rank run, message-fault storms stay exact, replay with the same
// seed is deterministic, and the degraded path reports its coverage gap.
#include <gtest/gtest.h>

#include <numeric>

#include "cluster/fault.hpp"
#include "core/cluster_driver.hpp"
#include "data/county_synth.hpp"
#include "data/dem_synth.hpp"

namespace zh {
namespace {

/// Shared scenario: one 96x96 raster split 2x2 (4 partitions, round-robin
/// owners), star-county zones spanning partition borders.
struct Scenario {
  std::vector<DemRaster> rasters;
  std::vector<std::pair<int, int>> schemas = {{2, 2}};
  PolygonSet zones;

  Scenario() {
    const DemParams dp{.seed = 17, .max_value = 59};
    rasters.push_back(
        generate_dem(96, 96, GeoTransform(0.0, 9.6, 0.1, 0.1), dp));
    CountyParams cp;
    cp.seed = 4;
    cp.grid_x = 4;
    cp.grid_y = 4;
    zones = generate_counties(GeoBox{-0.5, -0.5, 10.1, 10.1}, cp);
  }

  [[nodiscard]] ClusterRunConfig config(std::size_t ranks) const {
    ClusterRunConfig cfg;
    cfg.ranks = ranks;
    cfg.zonal = {.tile_size = 16, .bins = 60};
    return cfg;
  }

  /// Fault-free single-rank static run: the exactness reference.
  [[nodiscard]] HistogramSet reference() const {
    return run_cluster_zonal(rasters, schemas, zones, config(1)).merged;
  }
};

std::uint32_t total_completed(const ClusterRunResult& r) {
  std::uint32_t sum = 0;
  for (const RankOutcome& o : r.rank_outcomes) {
    sum += o.partitions_completed;
  }
  return sum;
}

TEST(ClusterRecovery, CrashAtEveryCheckpointKeepsResultExact) {
  const Scenario sc;
  const HistogramSet expect = sc.reference();

  for (const CrashPoint point :
       {CrashPoint::kStartup, CrashPoint::kPartitionStart,
        CrashPoint::kPartitionDone, CrashPoint::kResultSent,
        CrashPoint::kBeforeFinish}) {
    SCOPED_TRACE(std::string("crash at ") + std::string(to_string(point)));
    ClusterRunConfig cfg = sc.config(3);
    cfg.fault_tolerance.enabled = true;
    cfg.fault_tolerance.worker_timeout_ms = 10000;
    cfg.fault_tolerance.faults.crash = {1, point, 0};

    const ClusterRunResult r =
        run_cluster_zonal(sc.rasters, sc.schemas, sc.zones, cfg);
    EXPECT_EQ(r.merged, expect);
    EXPECT_FALSE(r.degraded);
    EXPECT_TRUE(r.incomplete_partitions.empty());
    EXPECT_EQ(total_completed(r), 4u);  // every partition counted once
    // The crashed rank records its own fate, so the outcome table says
    // kCrashed even when the master finishes before noticing the death
    // (possible at kResultSent/kBeforeFinish, where the rank's work is
    // already merged when the crash fires).
    EXPECT_EQ(r.rank_outcomes[1].state, RankState::kCrashed);
    if (point == CrashPoint::kStartup ||
        point == CrashPoint::kPartitionStart ||
        point == CrashPoint::kPartitionDone) {
      // Rank 1 never delivered its partition: it must be reassigned.
      EXPECT_EQ(r.rank_outcomes[1].partitions_completed, 0u);
      EXPECT_EQ(r.rank_outcomes[1].partitions_reassigned, 1u);
    }
  }
}

TEST(ClusterRecovery, CrashAtSecondOccurrenceAndMasterTakeover) {
  // Two ranks: the only worker owns partitions {1, 3} and dies entering
  // the second one, so the master must take the leftover itself.
  const Scenario sc;
  const HistogramSet expect = sc.reference();

  ClusterRunConfig cfg = sc.config(2);
  cfg.fault_tolerance.enabled = true;
  cfg.fault_tolerance.worker_timeout_ms = 10000;
  cfg.fault_tolerance.faults.crash = {1, CrashPoint::kPartitionStart, 1};

  const ClusterRunResult r =
      run_cluster_zonal(sc.rasters, sc.schemas, sc.zones, cfg);
  EXPECT_EQ(r.merged, expect);
  EXPECT_FALSE(r.degraded);
  EXPECT_EQ(r.rank_outcomes[1].state, RankState::kCrashed);
  EXPECT_EQ(r.rank_outcomes[1].partitions_completed, 1u);
  EXPECT_EQ(r.rank_outcomes[1].partitions_reassigned, 1u);
  EXPECT_EQ(r.rank_outcomes[0].partitions_completed, 3u);
}

TEST(ClusterRecovery, DegradedRunReportsCoverageGap) {
  // Master takeover disabled and the only worker dead on arrival: the
  // run must complete (not hang), flag itself degraded, and list the
  // partitions whose contribution is missing.
  const Scenario sc;
  const HistogramSet expect = sc.reference();

  ClusterRunConfig cfg = sc.config(2);
  cfg.fault_tolerance.enabled = true;
  cfg.fault_tolerance.worker_timeout_ms = 10000;
  cfg.fault_tolerance.master_takeover = false;
  cfg.fault_tolerance.faults.crash = {1, CrashPoint::kStartup, 0};

  const ClusterRunResult r =
      run_cluster_zonal(sc.rasters, sc.schemas, sc.zones, cfg);
  EXPECT_TRUE(r.degraded);
  EXPECT_EQ(r.incomplete_partitions,
            (std::vector<std::uint32_t>{1, 3}));  // round-robin owner 1
  EXPECT_NE(r.merged, expect);
  EXPECT_EQ(r.rank_outcomes[1].state, RankState::kCrashed);
}

TEST(ClusterRecovery, MessageFaultStormStaysExact) {
  const Scenario sc;
  const HistogramSet expect = sc.reference();

  for (const std::uint64_t seed : {1u, 2u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ClusterRunConfig cfg = sc.config(4);
    cfg.fault_tolerance.enabled = true;
    cfg.fault_tolerance.worker_timeout_ms = 10000;
    cfg.fault_tolerance.faults.seed = seed;
    cfg.fault_tolerance.faults.drop_prob = 0.2;
    cfg.fault_tolerance.faults.duplicate_prob = 0.3;
    cfg.fault_tolerance.faults.reorder_prob = 0.2;
    cfg.fault_tolerance.faults.delay_prob = 0.2;
    cfg.fault_tolerance.faults.delay_ms = 3;

    const ClusterRunResult r =
        run_cluster_zonal(sc.rasters, sc.schemas, sc.zones, cfg);
    EXPECT_EQ(r.merged, expect);  // duplicates deduped, drops recovered
    EXPECT_FALSE(r.degraded);
    EXPECT_EQ(total_completed(r), 4u);
  }
}

TEST(ClusterRecovery, CrashCombinedWithMessageFaultsStaysExact) {
  const Scenario sc;
  const HistogramSet expect = sc.reference();

  ClusterRunConfig cfg = sc.config(4);
  cfg.fault_tolerance.enabled = true;
  cfg.fault_tolerance.worker_timeout_ms = 10000;
  cfg.fault_tolerance.faults =
      FaultPlan::parse("seed=9,drop=0.15,dup=0.1,crash=2@partition_done");

  const ClusterRunResult r =
      run_cluster_zonal(sc.rasters, sc.schemas, sc.zones, cfg);
  EXPECT_EQ(r.merged, expect);
  EXPECT_FALSE(r.degraded);
  EXPECT_EQ(r.rank_outcomes[2].state, RankState::kCrashed);
}

TEST(ClusterRecovery, ReplayWithSameSeedIsDeterministic) {
  const Scenario sc;
  ClusterRunConfig cfg = sc.config(3);
  cfg.fault_tolerance.enabled = true;
  cfg.fault_tolerance.worker_timeout_ms = 10000;
  cfg.fault_tolerance.faults.crash = {1, CrashPoint::kPartitionDone, 0};

  const ClusterRunResult a =
      run_cluster_zonal(sc.rasters, sc.schemas, sc.zones, cfg);
  const ClusterRunResult b =
      run_cluster_zonal(sc.rasters, sc.schemas, sc.zones, cfg);
  EXPECT_EQ(a.merged, b.merged);
  ASSERT_EQ(a.rank_outcomes.size(), b.rank_outcomes.size());
  for (std::size_t r = 0; r < a.rank_outcomes.size(); ++r) {
    EXPECT_EQ(a.rank_outcomes[r], b.rank_outcomes[r]) << "rank " << r;
  }
  EXPECT_EQ(a.degraded, b.degraded);
  EXPECT_EQ(a.incomplete_partitions, b.incomplete_partitions);
}

TEST(ClusterRecovery, FaultTolerantModeWithoutFaultsMatchesStatic) {
  const Scenario sc;
  ClusterRunConfig plain = sc.config(3);
  ClusterRunConfig ft = plain;
  ft.fault_tolerance.enabled = true;
  ft.fault_tolerance.worker_timeout_ms = 10000;

  const ClusterRunResult a =
      run_cluster_zonal(sc.rasters, sc.schemas, sc.zones, plain);
  const ClusterRunResult b =
      run_cluster_zonal(sc.rasters, sc.schemas, sc.zones, ft);
  EXPECT_EQ(a.merged, b.merged);
  EXPECT_FALSE(b.degraded);
  EXPECT_EQ(total_completed(b), 4u);
  for (const RankOutcome& o : b.rank_outcomes) {
    EXPECT_EQ(o.state, RankState::kCompleted);
    EXPECT_EQ(o.partitions_reassigned, 0u);
  }
}

TEST(ClusterRecovery, AggressiveTimeoutStillExact) {
  // A 1 ms heartbeat window declares healthy workers dead left and
  // right. Recovery must stay exact regardless: late results from
  // "stragglers" are deduplicated against recomputed partitions.
  const Scenario sc;
  const HistogramSet expect = sc.reference();

  ClusterRunConfig cfg = sc.config(3);
  cfg.fault_tolerance.enabled = true;
  cfg.fault_tolerance.worker_timeout_ms = 1;

  const ClusterRunResult r =
      run_cluster_zonal(sc.rasters, sc.schemas, sc.zones, cfg);
  EXPECT_EQ(r.merged, expect);
  EXPECT_FALSE(r.degraded);
  EXPECT_EQ(total_completed(r), 4u);
}

TEST(ClusterRecovery, StaticModeFillsOutcomeTable) {
  const Scenario sc;
  const ClusterRunResult r =
      run_cluster_zonal(sc.rasters, sc.schemas, sc.zones, sc.config(2));
  ASSERT_EQ(r.rank_outcomes.size(), 2u);
  EXPECT_EQ(total_completed(r), 4u);
  for (const RankOutcome& o : r.rank_outcomes) {
    EXPECT_EQ(o.state, RankState::kCompleted);
  }
}

std::uint64_t metrics_partition_total(const ClusterRunResult& r) {
  std::uint64_t sum = 0;
  for (const RankMetricsRow& row : r.rank_metrics) {
    sum += row.partitions_processed;
  }
  return sum;
}

TEST(ClusterRecovery, StaticModeGathersRankMetrics) {
  const Scenario sc;
  const ClusterRunResult r =
      run_cluster_zonal(sc.rasters, sc.schemas, sc.zones, sc.config(2));
  ASSERT_EQ(r.rank_metrics.size(), 2u);
  EXPECT_EQ(metrics_partition_total(r), 4u);
  for (const RankMetricsRow& row : r.rank_metrics) {
    EXPECT_EQ(row.reported, 1u);
    EXPECT_GT(row.cells_histogrammed, 0u);
  }
  // The worker sent its histograms to the root, so its byte counter is
  // nonzero; the root's sends (partition metadata) are counted too.
  EXPECT_GT(r.rank_metrics[1].comm_bytes_sent, 0u);
  // Flattening helpers agree with the column schema.
  const std::vector<std::string> cols = rank_metrics_columns();
  EXPECT_EQ(rank_metrics_values(r.rank_metrics[0]).size(), cols.size());
}

TEST(ClusterRecovery, CrashedRankLeavesMetricsRowUnreported) {
  // A rank that dies before the final metrics send must show up as an
  // all-defaults row with reported == 0 -- never a hang, never a stale
  // row -- while the run itself still recovers to the exact answer.
  const Scenario sc;
  const HistogramSet expect = sc.reference();

  ClusterRunConfig cfg = sc.config(3);
  cfg.fault_tolerance.enabled = true;
  cfg.fault_tolerance.worker_timeout_ms = 10000;
  cfg.fault_tolerance.faults.crash = {1, CrashPoint::kBeforeFinish, 0};

  const ClusterRunResult r =
      run_cluster_zonal(sc.rasters, sc.schemas, sc.zones, cfg);
  EXPECT_EQ(r.merged, expect);
  ASSERT_EQ(r.rank_metrics.size(), 3u);
  EXPECT_EQ(r.rank_metrics[1].reported, 0u);
  EXPECT_EQ(r.rank_metrics[1], RankMetricsRow{});
  EXPECT_EQ(r.rank_metrics[0].reported, 1u);
  EXPECT_EQ(r.rank_metrics[2].reported, 1u);
  // The dead rank's work reached the master (it crashed after sending
  // results), so the surviving rows still cover all four partitions.
  EXPECT_EQ(metrics_partition_total(r) +
                r.rank_outcomes[1].partitions_completed,
            4u);
}

TEST(ClusterRecovery, MetricsRowsSurviveDropAndDuplicateStorm) {
  const Scenario sc;
  const HistogramSet expect = sc.reference();

  ClusterRunConfig cfg = sc.config(3);
  cfg.fault_tolerance.enabled = true;
  cfg.fault_tolerance.worker_timeout_ms = 10000;
  cfg.fault_tolerance.faults.seed = 11;
  cfg.fault_tolerance.faults.drop_prob = 0.2;
  cfg.fault_tolerance.faults.duplicate_prob = 0.2;

  const ClusterRunResult r =
      run_cluster_zonal(sc.rasters, sc.schemas, sc.zones, cfg);
  EXPECT_EQ(r.merged, expect);
  ASSERT_EQ(r.rank_metrics.size(), 3u);
  std::uint64_t results = 0;
  for (const RankMetricsRow& row : r.rank_metrics) {
    EXPECT_EQ(row.reported, 1u);  // dropped rows are re-requested
    results += row.results_sent;
  }
  EXPECT_EQ(metrics_partition_total(r), 4u);
  EXPECT_GE(results, metrics_partition_total(r) -
                         r.rank_metrics[0].partitions_processed);
}

}  // namespace
}  // namespace zh
