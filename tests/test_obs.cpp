// Observability layer: trace round-trips through Chrome trace_event
// JSON, the metrics registry stays exact (and race-free -- this suite is
// in the TSan matrix) under ThreadPool stress, run reports are
// schema-valid, and unwritable output paths fail with IoError. The
// direct obs:: API is exercised in both ZH_OBS build flavors; the macro
// tests assert recording when the option is ON and no-op behavior when
// it is OFF.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/error.hpp"
#include "device/thread_pool.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"

namespace zh {
namespace {

// Every test leaves the global flags off and the buffers clear so suite
// order never matters.
struct ObsGuard {
  ObsGuard() {
    obs::set_trace_enabled(false);
    obs::set_metrics_enabled(false);
    obs::trace_clear();
    obs::metrics_reset();
  }
  ~ObsGuard() {
    obs::set_trace_enabled(false);
    obs::set_metrics_enabled(false);
    obs::trace_clear();
    obs::metrics_reset();
  }
};

const obs::MetricRecord* find_metric(
    const std::vector<obs::MetricRecord>& all, const std::string& name) {
  for (const obs::MetricRecord& m : all) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

TEST(ObsTrace, SpanRoundTripsThroughChromeJson) {
  ObsGuard guard;
  obs::set_trace_enabled(true);
  {
    obs::Span span("unit.outer", "test");
    obs::record_span("unit.manual", "test", 10, 5);
  }
  const std::string json = obs::chrome_trace_json();
  const obs::JsonValue doc = obs::parse_json(json);
  const obs::JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  bool saw_outer = false;
  bool saw_manual = false;
  bool saw_process_meta = false;
  for (const obs::JsonValue& e : events->arr) {
    const obs::JsonValue* ph = e.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->str == "M") {
      saw_process_meta = true;
      continue;
    }
    ASSERT_EQ(ph->str, "X");
    const obs::JsonValue* name = e.find("name");
    ASSERT_NE(name, nullptr);
    ASSERT_TRUE(e.find("ts") != nullptr && e.find("ts")->is_number());
    ASSERT_TRUE(e.find("dur") != nullptr && e.find("dur")->is_number());
    ASSERT_TRUE(e.find("pid") != nullptr && e.find("tid") != nullptr);
    if (name->str == "unit.outer") saw_outer = true;
    if (name->str == "unit.manual") {
      saw_manual = true;
      EXPECT_EQ(e.find("ts")->number, 10.0);
      EXPECT_EQ(e.find("dur")->number, 5.0);
    }
  }
  EXPECT_TRUE(saw_outer);
  EXPECT_TRUE(saw_manual);
  EXPECT_TRUE(saw_process_meta);
}

TEST(ObsTrace, DisabledSpansRecordNothing) {
  ObsGuard guard;
  { obs::Span span("unit.off", "test"); }
  EXPECT_TRUE(obs::trace_snapshot().empty());
}

TEST(ObsTrace, EventsSurviveThreadExit) {
  ObsGuard guard;
  obs::set_trace_enabled(true);
  std::thread worker([] {
    obs::set_thread_rank(3);
    obs::record_span("unit.rank_thread", "test", 0, 1);
  });
  worker.join();
  const std::vector<obs::TraceEvent> events = obs::trace_snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "unit.rank_thread");
  EXPECT_EQ(events[0].rank, 3);
}

TEST(ObsJson, ParserRejectsMalformedInput) {
  EXPECT_THROW((void)obs::parse_json("{"), IoError);
  EXPECT_THROW((void)obs::parse_json("[1,]"), IoError);
  EXPECT_THROW((void)obs::parse_json("{} trailing"), IoError);
  EXPECT_THROW((void)obs::parse_json("\"bad\\q\""), IoError);
  std::string deep;
  for (int i = 0; i < 80; ++i) deep += '[';
  EXPECT_THROW((void)obs::parse_json(deep), IoError);
}

TEST(ObsJson, EscapedStringsRoundTrip) {
  const std::string raw = "a\"b\\c\nd\te\x01f";
  const obs::JsonValue doc =
      obs::parse_json("\"" + obs::json_escape(raw) + "\"");
  ASSERT_TRUE(doc.is_string());
  EXPECT_EQ(doc.str, raw);
}

TEST(ObsMetrics, CounterGaugeStatMergeAcrossThreads) {
  ObsGuard guard;
  const obs::MetricId c =
      obs::metric_id("test.merge.count", obs::MetricKind::kCounter);
  const obs::MetricId g =
      obs::metric_id("test.merge.gauge", obs::MetricKind::kGauge);
  const obs::MetricId s =
      obs::metric_id("test.merge.stat", obs::MetricKind::kStat);
  std::thread a([&] {
    obs::counter_add(c, 2);
    obs::gauge_max(g, 10);
    obs::stat_record(s, 1.0);
  });
  std::thread b([&] {
    obs::counter_add(c, 3);
    obs::gauge_max(g, 7);
    obs::stat_record(s, 5.0);
  });
  a.join();
  b.join();
  const auto all = obs::metrics_snapshot();
  const obs::MetricRecord* count = find_metric(all, "test.merge.count");
  const obs::MetricRecord* gauge = find_metric(all, "test.merge.gauge");
  const obs::MetricRecord* stat = find_metric(all, "test.merge.stat");
  ASSERT_NE(count, nullptr);
  ASSERT_NE(gauge, nullptr);
  ASSERT_NE(stat, nullptr);
  EXPECT_EQ(count->value, 5u);
  EXPECT_EQ(gauge->value, 10u);
  EXPECT_EQ(stat->count, 2u);
  EXPECT_DOUBLE_EQ(stat->sum, 6.0);
  EXPECT_DOUBLE_EQ(stat->min, 1.0);
  EXPECT_DOUBLE_EQ(stat->max, 5.0);
}

TEST(ObsMetrics, ReinterningWithDifferentKindThrows) {
  (void)obs::metric_id("test.kind.fixed", obs::MetricKind::kCounter);
  EXPECT_EQ(obs::metric_id("test.kind.fixed", obs::MetricKind::kCounter),
            obs::metric_id("test.kind.fixed", obs::MetricKind::kCounter));
  EXPECT_THROW(
      (void)obs::metric_id("test.kind.fixed", obs::MetricKind::kGauge),
      InvalidArgument);
}

TEST(ObsMetricsStress, ShardedUpdatesUnderThreadPoolAreExact) {
  ObsGuard guard;
  const obs::MetricId c =
      obs::metric_id("test.stress.count", obs::MetricKind::kCounter);
  const obs::MetricId g =
      obs::metric_id("test.stress.gauge", obs::MetricKind::kGauge);
  const obs::MetricId s =
      obs::metric_id("test.stress.stat", obs::MetricKind::kStat);

  // Snapshots race against updates on purpose: the registry must merge
  // a consistent view while shards are hot (TSan checks the ordering).
  std::atomic<bool> stop{false};
  std::thread snapshotter([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)obs::metrics_snapshot();
    }
  });

  constexpr std::size_t kN = 70000;  // multiple of 7 (stat sum below)
  {
    ThreadPool pool(4);
    pool.parallel_for(kN, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        obs::counter_add(c, 1);
        obs::gauge_max(g, i);
        obs::stat_record(s, static_cast<double>(i % 7));
      }
    });
  }  // pool workers join and their shards retire into the registry
  stop.store(true, std::memory_order_relaxed);
  snapshotter.join();

  const auto all = obs::metrics_snapshot();
  const obs::MetricRecord* count = find_metric(all, "test.stress.count");
  const obs::MetricRecord* gauge = find_metric(all, "test.stress.gauge");
  const obs::MetricRecord* stat = find_metric(all, "test.stress.stat");
  ASSERT_NE(count, nullptr);
  ASSERT_NE(gauge, nullptr);
  ASSERT_NE(stat, nullptr);
  EXPECT_EQ(count->value, kN);
  EXPECT_EQ(gauge->value, kN - 1);
  EXPECT_EQ(stat->count, kN);
  EXPECT_DOUBLE_EQ(stat->sum, (kN / 7) * 21.0);  // sum of i%7 per block of 7
  EXPECT_DOUBLE_EQ(stat->min, 0.0);
  EXPECT_DOUBLE_EQ(stat->max, 6.0);
}

TEST(ObsMacros, KillSwitchMatchesBuildFlavor) {
  ObsGuard guard;
#if defined(ZH_ENABLE_OBS)
  obs::set_metrics_enabled(true);
  obs::set_trace_enabled(true);
  ZH_COUNTER_ADD("test.macro.counter", 3);
  { ZH_TRACE_SPAN("test.macro.span", "test"); }
  const auto all = obs::metrics_snapshot();
  const obs::MetricRecord* m = find_metric(all, "test.macro.counter");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->value, 3u);
  const std::vector<obs::TraceEvent> events = obs::trace_snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "test.macro.span");
#else
  // ZH_OBS=OFF: the macros are no-ops even with recording force-enabled
  // -- nothing is interned, nothing is recorded.
  obs::set_metrics_enabled(true);
  obs::set_trace_enabled(true);
  ZH_COUNTER_ADD("test.macro.counter", 3);
  { ZH_TRACE_SPAN("test.macro.span", "test"); }
  EXPECT_EQ(find_metric(obs::metrics_snapshot(), "test.macro.counter"),
            nullptr);
  EXPECT_TRUE(obs::trace_snapshot().empty());
#endif
}

TEST(ObsReport, JsonIsSchemaValid) {
  ObsGuard guard;
  obs::set_metrics_enabled(true);
  ZH_COUNTER_ADD("test.report.metric", 4);

  obs::RunReport report;
  report.tool = "unit-test";
  report.workload = "synthetic";
  report.config = {{"tile", "16"}, {"bins", "8"}};
  report.times.seconds = {1.0, 2.0, 0.5, 0.25, 4.0};
  report.times.overhead.transfer = 0.125;
  report.times.overhead.merge = 0.0625;
  report.times.overhead.output = 0.03125;
  report.has_times = true;
  report.counters = {{"cells_total", 123u}};
  report.rank_columns = {"partitions", "reported"};
  report.rank_rows = {{2, 1}, {0, 0}};
  report.rank_states = {"completed", "crashed"};

  const obs::JsonValue doc = obs::parse_json(obs::report_json(report));
  ASSERT_TRUE(doc.is_object());
  ASSERT_NE(doc.find("schema"), nullptr);
  EXPECT_EQ(doc.find("schema")->str, "zh-run-report-v1");
  EXPECT_EQ(doc.find("tool")->str, "unit-test");
  EXPECT_FALSE(doc.find("git_sha")->str.empty());

  const obs::JsonValue* times = doc.find("times_s");
  ASSERT_NE(times, nullptr);
  EXPECT_DOUBLE_EQ(times->find("step4")->number, 4.0);
  EXPECT_DOUBLE_EQ(times->find("overhead_transfer")->number, 0.125);
  EXPECT_DOUBLE_EQ(times->find("overhead_merge")->number, 0.0625);
  EXPECT_DOUBLE_EQ(times->find("overhead_output")->number, 0.03125);
  EXPECT_DOUBLE_EQ(times->find("step_total")->number, 7.75);

  const obs::JsonValue* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->find("cells_total")->number, 123.0);

  const obs::JsonValue* ranks = doc.find("ranks");
  ASSERT_NE(ranks, nullptr);
  ASSERT_EQ(ranks->find("rows")->arr.size(), 2u);
  EXPECT_EQ(ranks->find("rows")->arr[0].arr.size(),
            ranks->find("columns")->arr.size());
  EXPECT_EQ(ranks->find("states")->arr[1].str, "crashed");

#if defined(ZH_ENABLE_OBS)
  const obs::JsonValue* metrics = doc.find("metrics");
  ASSERT_NE(metrics, nullptr);
  const obs::JsonValue* metric = metrics->find("test.report.metric");
  ASSERT_NE(metric, nullptr);
  EXPECT_DOUBLE_EQ(metric->find("value")->number, 4.0);
#endif
}

TEST(ObsReport, UnwritablePathFailsWithIoError) {
  ObsGuard guard;
  obs::RunReport report;
  report.tool = "unit-test";
  EXPECT_THROW(
      obs::write_report_json("/nonexistent-zh-dir/report.json", report),
      IoError);
  EXPECT_THROW(obs::write_chrome_trace("/nonexistent-zh-dir/trace.json"),
               IoError);
}

}  // namespace
}  // namespace zh
