// Performance-model sanity: the projections must reproduce the *shape*
// of Table 2 -- GTX Titan beats Quadro 6000 by about 2x end-to-end, with
// the paper's per-step speedups, Step 4 dominant and Steps 2-3 minor.
#include <gtest/gtest.h>

#include "core/perf_model.hpp"

namespace zh {
namespace {

// Work counters resembling the paper's full-scale CONUS workload.
WorkCounters paper_scale_work() {
  WorkCounters w;
  w.cells_total = 20'165'760'000ull;
  w.tiles_total = 155'600;
  w.candidate_pairs = 700'000;
  w.pairs_inside = 400'000;
  w.pairs_intersect = 250'000;
  w.aggregate_bin_adds = w.pairs_inside * 5000;
  w.pip_cell_tests = w.pairs_intersect * 360ull * 360ull;
  w.pip_edge_tests = w.pip_cell_tests * 80;
  w.cells_in_polygons = 18'000'000'000ull;
  w.compressed_bytes = 7'300'000'000ull;  // the paper's 7.3 GB
  w.raw_bytes = 40'000'000'000ull;
  return w;
}

TEST(PerfModel, TitanScaleIsUnity) {
  for (std::size_t s = 0; s < StepTimes::kSteps; ++s) {
    EXPECT_DOUBLE_EQ(
        PerfModel::device_step_scale(DeviceProfile::gtx_titan(), s), 1.0);
  }
}

TEST(PerfModel, QuadroScalesMatchPublishedSpeedups) {
  const DeviceProfile q = DeviceProfile::quadro6000();
  EXPECT_DOUBLE_EQ(1.0 / PerfModel::device_step_scale(q, 0), 2.0);
  EXPECT_DOUBLE_EQ(1.0 / PerfModel::device_step_scale(q, 1), 1.6);
  EXPECT_DOUBLE_EQ(PerfModel::device_step_scale(q, 2), 1.0);  // CPU step
  EXPECT_DOUBLE_EQ(1.0 / PerfModel::device_step_scale(q, 4), 2.6);
}

TEST(PerfModel, ProjectionShapeMatchesTable2) {
  const PerfModel model;
  const WorkCounters w = paper_scale_work();
  const StepTimes titan = model.project(w, DeviceProfile::gtx_titan());
  const StepTimes quadro = model.project(w, DeviceProfile::quadro6000());

  // Step ranking on both devices: step 4 > step 1 > steps 2,3.
  for (const StepTimes& t : {titan, quadro}) {
    EXPECT_GT(t.seconds[4], t.seconds[1]);
    EXPECT_GT(t.seconds[1], t.seconds[2]);
    EXPECT_GT(t.seconds[1], t.seconds[3]);
  }

  // Per-step speedups equal the published ratios.
  EXPECT_NEAR(quadro.seconds[4] / titan.seconds[4], 2.6, 1e-9);
  EXPECT_NEAR(quadro.seconds[1] / titan.seconds[1], 1.6, 1e-9);
  EXPECT_NEAR(quadro.seconds[0] / titan.seconds[0], 2.0, 1e-9);

  // End-to-end: Kepler roughly halves the Fermi runtime (paper: "the
  // end-to-end runtimes is nearly reduced to half on GTX Titan").
  const double ratio = quadro.end_to_end() / titan.end_to_end();
  EXPECT_GT(ratio, 1.6);
  EXPECT_LT(ratio, 2.6);
}

TEST(PerfModel, K20SlightlySlowerThanTitan) {
  const PerfModel model;
  const WorkCounters w = paper_scale_work();
  const StepTimes titan = model.project(w, DeviceProfile::gtx_titan());
  const StepTimes k20 = model.project(w, DeviceProfile::k20());
  // Paper: 60.7 s single K20 node vs 46 s GTX Titan (~1.3x).
  const double ratio = k20.step_total() / titan.step_total();
  EXPECT_GT(ratio, 1.05);
  EXPECT_LT(ratio, 1.5);
}

TEST(PerfModel, DecodeStepOnlyChargedForCompressedInput) {
  const PerfModel model;
  WorkCounters w = paper_scale_work();
  w.compressed_bytes = 0;
  const StepTimes t = model.project(w, DeviceProfile::gtx_titan());
  EXPECT_DOUBLE_EQ(t.seconds[0], 0.0);
  EXPECT_GT(t.overhead.transfer, 0.0);  // raw upload still modeled
}

TEST(PerfModel, OverheadUsesCompressedUploadWhenAvailable) {
  const PerfModel model;
  WorkCounters w = paper_scale_work();
  const StepTimes comp = model.project(w, DeviceProfile::gtx_titan());
  w.compressed_bytes = 0;
  const StepTimes raw = model.project(w, DeviceProfile::gtx_titan());
  // 7.3 GB vs 40 GB at 2.5 GB/s: compression shrinks the upload time --
  // the Sec. IV.B argument for BQ-Tree despite its decode cost.
  EXPECT_LT(comp.overhead.transfer, raw.overhead.transfer);
  EXPECT_NEAR(raw.overhead.transfer - comp.overhead.transfer,
              (40.0 - 7.3) / 2.5, 0.2);
  // The fixed output allowance is transfer-independent.
  EXPECT_DOUBLE_EQ(comp.overhead.output, raw.overhead.output);
}

TEST(PerfModel, UnknownDeviceFallsBackToThroughputRatio) {
  DeviceProfile slow = DeviceProfile::gtx_titan();
  slow.name = "Hypothetical";
  slow.cuda_cores /= 4;
  const double s = PerfModel::device_step_scale(slow, 4);
  EXPECT_GT(s, 0.0);
  EXPECT_LT(s, 1.0);
  EXPECT_DOUBLE_EQ(PerfModel::device_step_scale(slow, 2), 1.0);
}

TEST(PerfModel, ProjectionScalesLinearlyWithWork) {
  const PerfModel model;
  WorkCounters w = paper_scale_work();
  const StepTimes t1 = model.project(w, DeviceProfile::gtx_titan());
  w.cells_total *= 2;
  w.pip_edge_tests *= 2;
  const StepTimes t2 = model.project(w, DeviceProfile::gtx_titan());
  EXPECT_NEAR(t2.seconds[1], 2.0 * t1.seconds[1], 1e-9);
  EXPECT_NEAR(t2.seconds[4], 2.0 * t1.seconds[4], 1e-9);
  EXPECT_DOUBLE_EQ(t2.seconds[2], t1.seconds[2]);
}

}  // namespace
}  // namespace zh
