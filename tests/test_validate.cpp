#include <gtest/gtest.h>

#include "geom/validate.hpp"
#include "test_util.hpp"

namespace zh {
namespace {

Ring square(double x0, double y0, double side) {
  return {{x0, y0}, {x0 + side, y0}, {x0 + side, y0 + side},
          {x0, y0 + side}};
}

TEST(SegmentsIntersect, ProperCrossing) {
  EXPECT_TRUE(segments_intersect({0, 0}, {2, 2}, {0, 2}, {2, 0}, false));
  EXPECT_FALSE(segments_intersect({0, 0}, {1, 1}, {2, 2}, {3, 3}, false));
}

TEST(SegmentsIntersect, TouchingEndpointCounts) {
  EXPECT_TRUE(segments_intersect({0, 0}, {1, 1}, {1, 1}, {2, 0}, false));
  // ... unless shared endpoints are explicitly ignored (adjacent edges).
  EXPECT_FALSE(segments_intersect({0, 0}, {1, 1}, {1, 1}, {2, 0}, true));
}

TEST(SegmentsIntersect, CollinearOverlap) {
  EXPECT_TRUE(segments_intersect({0, 0}, {2, 0}, {1, 0}, {3, 0}, false));
  EXPECT_FALSE(segments_intersect({0, 0}, {1, 0}, {2, 0}, {3, 0}, false));
  // Collinear continuation through a shared endpoint is NOT a crossing.
  EXPECT_FALSE(segments_intersect({0, 0}, {1, 0}, {1, 0}, {2, 0}, true));
  // But a collinear fold-back over the same edge is.
  EXPECT_TRUE(segments_intersect({0, 0}, {2, 0}, {2, 0}, {1, 0}, true));
}

TEST(Validate, CleanPolygonPasses) {
  Polygon p({square(0, 0, 10), square(3, 3, 2)});
  const ValidationReport r = validate_polygon(p);
  EXPECT_TRUE(r.ok()) << (r.notes.empty() ? std::string{} : r.notes[0]);
}

TEST(Validate, RandomStarPolygonsAreValid) {
  std::mt19937 rng(3);
  for (int i = 0; i < 20; ++i) {
    const Polygon p =
        test::random_star_polygon(rng, 5, 5, 3, 8 + i, i % 2 == 0);
    const ValidationReport r = validate_polygon(p);
    EXPECT_TRUE(r.ok()) << "trial " << i;
  }
}

TEST(Validate, DetectsBowtie) {
  // Classic self-intersecting "bowtie".
  const Polygon bowtie({{{0, 0}, {2, 2}, {2, 0}, {0, 2}}});
  const ValidationReport r = validate_polygon(bowtie);
  EXPECT_TRUE(r.has_self_intersection);
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.notes.empty());
}

TEST(Validate, DetectsDuplicateVertices) {
  const Polygon p({{{0, 0}, {1, 0}, {1, 0}, {1, 1}, {0, 1}}});
  const ValidationReport r = validate_polygon(p);
  EXPECT_TRUE(r.has_duplicate_vertices);
}

TEST(Validate, DetectsDegenerateRing) {
  const Polygon p({{{0, 0}, {1, 1}, {0, 0}, {1, 1}}});
  const ValidationReport r = validate_polygon(p);
  EXPECT_TRUE(r.has_degenerate_ring);
}

TEST(Validate, DetectsRingCrossing) {
  // "Hole" sticking out of the outer ring.
  Polygon p({square(0, 0, 4)});
  p.add_ring(square(3, 1, 3));
  const ValidationReport r = validate_polygon(p);
  EXPECT_TRUE(r.has_ring_crossing);
}

TEST(Validate, NestedHoleDoesNotCross) {
  Polygon p({square(0, 0, 10)});
  p.add_ring(square(2, 2, 3));
  EXPECT_FALSE(validate_polygon(p).has_ring_crossing);
}

TEST(DedupeRing, RemovesConsecutiveAndWrapDuplicates) {
  const Ring in = {{0, 0}, {0, 0}, {1, 0}, {1, 1}, {1, 1}, {0, 1}, {0, 0}};
  const Ring out = dedupe_ring(in);
  EXPECT_EQ(out, (Ring{{0, 0}, {1, 0}, {1, 1}, {0, 1}}));
  EXPECT_EQ(dedupe_ring({}), Ring{});
}

TEST(NormalizeWinding, OgcConvention) {
  Ring outer_cw = square(0, 0, 10);
  std::reverse(outer_cw.begin(), outer_cw.end());
  Ring hole_ccw = square(2, 2, 2);
  Polygon p({outer_cw, hole_ccw});

  const Polygon n = normalize_winding(p);
  EXPECT_GT(ring_signed_area(n.rings()[0]), 0.0);  // outer CCW
  EXPECT_LT(ring_signed_area(n.rings()[1]), 0.0);  // hole CW
  // Normalizing twice is idempotent.
  const Polygon nn = normalize_winding(n);
  EXPECT_DOUBLE_EQ(ring_signed_area(nn.rings()[0]),
                   ring_signed_area(n.rings()[0]));
}

TEST(PolygonAreaOgc, HoleSubtracts) {
  Polygon p({square(0, 0, 10), square(2, 2, 2)});
  EXPECT_DOUBLE_EQ(polygon_area_ogc(p), 100.0 - 4.0);
  EXPECT_DOUBLE_EQ(polygon_area_ogc(Polygon{}), 0.0);
  // Orientation of the input is irrelevant.
  Polygon q = normalize_winding(p);
  EXPECT_DOUBLE_EQ(polygon_area_ogc(q), 96.0);
}

}  // namespace
}  // namespace zh
