#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "device/thread_pool.hpp"

namespace zh {
namespace {

TEST(ThreadPool, SizeIsPositive) {
  EXPECT_GE(ThreadPool::global().size(), 1u);
  ThreadPool local(3);
  EXPECT_EQ(local.size(), 3u);
}

TEST(ThreadPool, ParallelForCoversExactlyOnce) {
  const std::size_t n = 100'000;
  std::vector<std::atomic<int>> hits(n);
  ThreadPool::global().parallel_for(n, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForEmptyRange) {
  bool called = false;
  ThreadPool::global().parallel_for(
      0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForSingleElement) {
  std::atomic<int> sum{0};
  ThreadPool::global().parallel_for(1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) sum += static_cast<int>(i) + 7;
  });
  EXPECT_EQ(sum.load(), 7);
}

TEST(ThreadPool, ParallelForRespectsGrain) {
  // With grain == n, the body must be invoked exactly once, inline.
  std::atomic<int> calls{0};
  ThreadPool::global().parallel_for(
      1000,
      [&](std::size_t b, std::size_t e) {
        ++calls;
        EXPECT_EQ(b, 0u);
        EXPECT_EQ(e, 1000u);
      },
      1000);
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, ParallelForSumsCorrectly) {
  const std::size_t n = 1 << 18;
  std::vector<std::uint64_t> data(n);
  std::iota(data.begin(), data.end(), 0u);
  std::atomic<std::uint64_t> total{0};
  ThreadPool::global().parallel_for(n, [&](std::size_t b, std::size_t e) {
    std::uint64_t local = 0;
    for (std::size_t i = b; i < e; ++i) local += data[i];
    total.fetch_add(local, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), static_cast<std::uint64_t>(n) * (n - 1) / 2);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // A pool task calling parallel_for again must make progress even when
  // every worker is busy (the calling thread participates in draining).
  std::atomic<std::uint64_t> total{0};
  ThreadPool::global().parallel_for(8, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      ThreadPool::global().parallel_for(
          64, [&](std::size_t ib, std::size_t ie) {
            total.fetch_add(ie - ib, std::memory_order_relaxed);
          });
    }
  });
  EXPECT_EQ(total.load(), 8u * 64u);
}

TEST(ThreadPool, ExceptionPropagates) {
  EXPECT_THROW(
      ThreadPool::global().parallel_for(100,
                                        [&](std::size_t b, std::size_t) {
                                          if (b == 0) {
                                            throw InvalidArgument("boom");
                                          }
                                        }),
      InvalidArgument);
}

TEST(ThreadPool, PostRuns) {
  std::atomic<bool> ran{false};
  std::atomic<int> gate{0};
  ThreadPool::global().post([&] {
    ran = true;
    gate = 1;
  });
  while (gate.load() == 0) std::this_thread::yield();
  EXPECT_TRUE(ran.load());
}

}  // namespace
}  // namespace zh
