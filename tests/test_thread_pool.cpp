#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "device/thread_pool.hpp"
#include "obs/obs.hpp"

namespace zh {
namespace {

TEST(ThreadPool, SizeIsPositive) {
  EXPECT_GE(ThreadPool::global().size(), 1u);
  ThreadPool local(3);
  EXPECT_EQ(local.size(), 3u);
}

TEST(ThreadPool, ParallelForCoversExactlyOnce) {
  const std::size_t n = 100'000;
  std::vector<std::atomic<int>> hits(n);
  ThreadPool::global().parallel_for(n, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForEmptyRange) {
  bool called = false;
  ThreadPool::global().parallel_for(
      0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForSingleElement) {
  std::atomic<int> sum{0};
  ThreadPool::global().parallel_for(1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) sum += static_cast<int>(i) + 7;
  });
  EXPECT_EQ(sum.load(), 7);
}

TEST(ThreadPool, ParallelForRespectsGrain) {
  // With grain == n, the body must be invoked exactly once, inline.
  std::atomic<int> calls{0};
  ThreadPool::global().parallel_for(
      1000,
      [&](std::size_t b, std::size_t e) {
        ++calls;
        EXPECT_EQ(b, 0u);
        EXPECT_EQ(e, 1000u);
      },
      1000);
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, ParallelForSumsCorrectly) {
  const std::size_t n = 1 << 18;
  std::vector<std::uint64_t> data(n);
  std::iota(data.begin(), data.end(), 0u);
  std::atomic<std::uint64_t> total{0};
  ThreadPool::global().parallel_for(n, [&](std::size_t b, std::size_t e) {
    std::uint64_t local = 0;
    for (std::size_t i = b; i < e; ++i) local += data[i];
    total.fetch_add(local, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), static_cast<std::uint64_t>(n) * (n - 1) / 2);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // A pool task calling parallel_for again must make progress even when
  // every worker is busy (the calling thread participates in draining).
  std::atomic<std::uint64_t> total{0};
  ThreadPool::global().parallel_for(8, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      ThreadPool::global().parallel_for(
          64, [&](std::size_t ib, std::size_t ie) {
            total.fetch_add(ie - ib, std::memory_order_relaxed);
          });
    }
  });
  EXPECT_EQ(total.load(), 8u * 64u);
}

TEST(ThreadPool, ExceptionPropagates) {
  EXPECT_THROW(
      ThreadPool::global().parallel_for(100,
                                        [&](std::size_t b, std::size_t) {
                                          if (b == 0) {
                                            throw InvalidArgument("boom");
                                          }
                                        }),
      InvalidArgument);
}

TEST(ThreadPool, PostRuns) {
  std::atomic<bool> ran{false};
  std::atomic<int> gate{0};
  ThreadPool::global().post([&] {
    ran = true;
    gate = 1;
  });
  while (gate.load() == 0) std::this_thread::yield();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, GrainLargerThanNRunsInlineOnCaller) {
  // grain > n collapses to a single chunk executed on the calling thread
  // (no tasks posted, no synchronization).
  std::atomic<int> calls{0};
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id body_thread;
  ThreadPool::global().parallel_for(
      10,
      [&](std::size_t b, std::size_t e) {
        ++calls;
        body_thread = std::this_thread::get_id();
        EXPECT_EQ(b, 0u);
        EXPECT_EQ(e, 10u);
      },
      1000);
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(body_thread, caller);
}

TEST(ThreadPool, ZeroLengthRangeWithGrainNeverInvokesBody) {
  bool called = false;
  ThreadPool::global().parallel_for(
      0, [&](std::size_t, std::size_t) { called = true; }, 128);
  EXPECT_FALSE(called);
  // grain == 0 is normalized to 1, not a division hazard.
  std::atomic<std::size_t> covered{0};
  ThreadPool::global().parallel_for(
      17,
      [&](std::size_t b, std::size_t e) {
        covered.fetch_add(e - b, std::memory_order_relaxed);
      },
      0);
  EXPECT_EQ(covered.load(), 17u);
}

TEST(ThreadPool, ExceptionPropagatesFromInlinePath) {
  // chunk >= n executes the body inline; the throw must surface unchanged.
  EXPECT_THROW(ThreadPool::global().parallel_for(
                   5, [](std::size_t, std::size_t) {
                     throw std::runtime_error("inline boom");
                   },
                   100),
               std::runtime_error);
}

TEST(ThreadPool, FirstExceptionWinsAndPoolStaysUsable) {
  // Every chunk throws; exactly one exception (the first recorded)
  // propagates, and the pool must remain fully operational afterwards.
  ThreadPool pool(4);
  try {
    pool.parallel_for(
        1024,
        [](std::size_t b, std::size_t) {
          throw InvalidArgument("chunk " + std::to_string(b));
        },
        1);
    FAIL() << "parallel_for swallowed the body exceptions";
  } catch (const InvalidArgument&) {
  }
  std::atomic<std::size_t> covered{0};
  pool.parallel_for(4096, [&](std::size_t b, std::size_t e) {
    covered.fetch_add(e - b, std::memory_order_relaxed);
  });
  EXPECT_EQ(covered.load(), 4096u);
}

TEST(ThreadPool, ChunksNeverClaimPastNOrOverlap) {
  // Sweep awkward (n, grain) combinations: every invocation must stay
  // inside [0, n), chunks must be non-empty and grain-sized except the
  // tail, and coverage must be exact (no claim past n double-counts).
  for (const std::size_t n : {1u, 2u, 7u, 64u, 1000u, 1001u}) {
    for (const std::size_t grain : {1u, 3u, 7u, 64u, 999u, 1024u}) {
      std::atomic<std::size_t> covered{0};
      std::atomic<bool> bad{false};
      ThreadPool::global().parallel_for(
          n,
          [&](std::size_t b, std::size_t e) {
            if (b >= e || e > n) bad = true;
            covered.fetch_add(e - b, std::memory_order_relaxed);
          },
          grain);
      EXPECT_FALSE(bad.load()) << "n=" << n << " grain=" << grain;
      EXPECT_EQ(covered.load(), n) << "n=" << n << " grain=" << grain;
    }
  }
}

#if defined(ZH_ENABLE_OBS)
TEST(ThreadPool, DegenerateRangesPostNoPoolTasks) {
  // n == 0 and chunk >= n short-circuit before any task is posted: no
  // worker wakeups, no queue traffic. The pool.tasks_run counter is
  // recorded per posted task while metrics are on, so its absence after
  // both calls pins the no-post fast path.
  obs::set_metrics_enabled(false);
  obs::metrics_reset();
  obs::set_metrics_enabled(true);
  std::atomic<int> calls{0};
  ThreadPool::global().parallel_for(
      0, [&](std::size_t, std::size_t) { ++calls; });
  ThreadPool::global().parallel_for(
      10, [&](std::size_t, std::size_t) { ++calls; }, 64);
  EXPECT_EQ(calls.load(), 1);  // the grain>n call runs inline, once
  for (const obs::MetricRecord& m : obs::metrics_snapshot()) {
    EXPECT_NE(m.name, "pool.tasks_run")
        << "a degenerate parallel_for posted " << m.value << " task(s)";
  }
  obs::set_metrics_enabled(false);
  obs::metrics_reset();
}
#endif

TEST(ThreadPool, ConcurrentPostDuringShutdownDrainsEverything) {
  // Tasks re-posting from inside workers race with the destructor setting
  // stop_. The shutdown protocol (workers exit only on stop_ + empty
  // queue) guarantees every successfully posted task still executes.
  std::atomic<int> executed{0};
  constexpr int kSeeds = 64;
  {
    ThreadPool pool(3);
    for (int i = 0; i < kSeeds; ++i) {
      pool.post([&executed, &pool] {
        executed.fetch_add(1, std::memory_order_relaxed);
        pool.post(
            [&executed] { executed.fetch_add(1, std::memory_order_relaxed); });
      });
    }
  }  // ~ThreadPool: stop + join; re-posted tasks drain before workers exit
  EXPECT_EQ(executed.load(), 2 * kSeeds);
}

TEST(ThreadPool, DestructorRunsAllPendingTasks) {
  std::atomic<int> executed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 256; ++i) {
      pool.post([&executed] {
        executed.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }
  EXPECT_EQ(executed.load(), 256);
}

}  // namespace
}  // namespace zh
