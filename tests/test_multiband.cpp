#include <gtest/gtest.h>

#include "core/multiband.hpp"
#include "test_util.hpp"

namespace zh {
namespace {

TEST(MultiBand, SeriesEqualsPerBandRuns) {
  Device dev;
  const GeoTransform t(0.0, 8.0, 0.1, 0.1);
  std::vector<DemRaster> bands;
  for (std::uint32_t s = 0; s < 4; ++s) {
    bands.push_back(test::random_raster(80, 96, 100 + s, 199, t));
  }
  const PolygonSet zones = test::random_polygon_set(
      17, GeoBox{0.5, 0.5, 9.1, 7.5}, 7, /*holes=*/true);
  const ZonalConfig cfg{.tile_size = 16, .bins = 200};

  const SeriesResult series =
      run_series(dev, bands, zones, cfg);
  ASSERT_EQ(series.per_band.size(), bands.size());

  const ZonalPipeline pipe(dev, cfg);
  for (std::size_t b = 0; b < bands.size(); ++b) {
    const ZonalResult single = pipe.run(bands[b], zones);
    EXPECT_EQ(series.per_band[b], single.per_polygon) << "band " << b;
  }
}

TEST(MultiBand, PairingCountersChargedOnce) {
  Device dev;
  const GeoTransform t(0.0, 4.0, 0.1, 0.1);
  std::vector<DemRaster> bands;
  for (std::uint32_t s = 0; s < 3; ++s) {
    bands.push_back(test::random_raster(40, 40, s, 49, t));
  }
  const PolygonSet zones =
      test::random_polygon_set(3, GeoBox{0.5, 0.5, 3.5, 3.5}, 4, false);
  const ZonalConfig cfg{.tile_size = 8, .bins = 50};

  const SeriesResult series = run_series(dev, bands, zones, cfg);
  const ZonalPipeline pipe(dev, cfg);
  const ZonalResult single = pipe.run(bands[0], zones);

  // Pairing counters match ONE run; per-cell counters are 3x.
  EXPECT_EQ(series.work.candidate_pairs, single.work.candidate_pairs);
  EXPECT_EQ(series.work.pairs_inside, single.work.pairs_inside);
  EXPECT_EQ(series.work.pairs_intersect, single.work.pairs_intersect);
  EXPECT_EQ(series.work.cells_total, 3 * single.work.cells_total);
  EXPECT_EQ(series.work.pip_cell_tests, 3 * single.work.pip_cell_tests);
}

TEST(MultiBand, RejectsMisregisteredBands) {
  Device dev;
  std::vector<DemRaster> bands;
  bands.push_back(test::random_raster(20, 20, 1, 9));
  bands.push_back(test::random_raster(20, 21, 2, 9));
  EXPECT_THROW(run_series(dev, bands, PolygonSet{},
                          {.tile_size = 5, .bins = 10}),
               InvalidArgument);

  bands.pop_back();
  bands.push_back(test::random_raster(20, 20, 2, 9,
                                      GeoTransform(1.0, 1.0, 1.0, 1.0)));
  EXPECT_THROW(run_series(dev, bands, PolygonSet{},
                          {.tile_size = 5, .bins = 10}),
               InvalidArgument);
}

TEST(MultiBand, EmptySeries) {
  Device dev;
  const SeriesResult r = run_series(dev, {}, PolygonSet{},
                                    {.tile_size = 5, .bins = 10});
  EXPECT_TRUE(r.per_band.empty());
  EXPECT_EQ(r.work.cells_total, 0u);
}

TEST(MultiBand, WorkspaceReuseAcrossBands) {
  Device dev;
  const GeoTransform t(0.0, 2.0, 0.1, 0.1);
  std::vector<DemRaster> bands;
  bands.push_back(test::random_raster(20, 20, 5, 9, t));
  bands.push_back(test::random_raster(20, 20, 6, 9, t));
  PolygonSet zones;
  zones.add(Polygon({{{0.3, 0.3}, {1.7, 0.3}, {1.7, 1.7}, {0.3, 1.7}}}));

  ZonalWorkspace ws;
  const SeriesResult a =
      run_series(dev, bands, zones, {.tile_size = 4, .bins = 10}, &ws);
  const SeriesResult b =
      run_series(dev, bands, zones, {.tile_size = 4, .bins = 10}, &ws);
  ASSERT_EQ(a.per_band.size(), b.per_band.size());
  for (std::size_t i = 0; i < a.per_band.size(); ++i) {
    EXPECT_EQ(a.per_band[i], b.per_band[i]);
  }
}

}  // namespace
}  // namespace zh
