// Malformed-input corpus for every text parser (WKT, GeoJSON, ESRI
// ASCII grid, points CSV): each sample must raise IoError -- never
// crash, hang, or trigger an absurd allocation. The ASan/UBSan check
// stage runs this suite to catch parser memory bugs.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "geom/wkt.hpp"
#include "io/ascii_grid.hpp"
#include "io/geojson.hpp"
#include "io/vector_io.hpp"

namespace zh {
namespace {

// ------------------------------------------------------------- WKT

TEST(ParserRobustness, WktCorpusThrowsIoError) {
  const char* corpus[] = {
      "",
      "   ",
      "CIRCLE (1 2)",
      "POLYGON",
      "POLYGON (",
      "POLYGON ((",
      "POLYGON ((1 2))",
      "POLYGON ((1 2, 3 4))",            // <3 distinct vertices
      "POLYGON ((1 2, 3 4, 5 six))",     // non-numeric coordinate
      "POLYGON ((1 2, 3 4, 5 6)",        // missing closing paren
      "POLYGON ((1 2, 3 4, 5 6))x",      // trailing garbage
      "POLYGON ((nan nan, 1 0, 0 1))",   // strtod accepts nan; we must not
      "POLYGON ((inf 0, 1 0, 0 1))",
      "POLYGON ((-inf 0, 1 0, 0 1))",
      "MULTIPOLYGON (((0 0, 1 0, 0 1)), ",
  };
  for (const char* wkt : corpus) {
    SCOPED_TRACE(std::string("WKT: \"") + wkt + '"');
    EXPECT_THROW((void)parse_wkt(wkt), IoError);
  }
}

// ----------------------------------------------------------- GeoJSON

TEST(ParserRobustness, GeoJsonCorpusThrowsIoError) {
  const std::string corpus[] = {
      "",
      "{",
      "[1, 2",
      "{\"type\":}",
      "{\"type\":\"FeatureCollection\"}",  // missing features
      "{\"type\":\"Feature\",\"geometry\":{\"type\":\"Polygon\"}}",
      "{\"type\":\"Widget\",\"coordinates\":[]}",
      "{\"type\":\"Polygon\",\"coordinates\":[[[\"a\",0],[1,0],[0,1]]]}",
      "{\"type\":\"Polygon\",\"coordinates\":[[[1,0],[0,1]]]}",  // 2 pts
      // Overflowing literal parses to +inf; must be rejected, not stored.
      "{\"type\":\"Polygon\",\"coordinates\":[[[1e309,0],[1,0],[0,1]]]}",
      "{\"type\":\"Polygon\",\"coordinates\":[[[nan,0],[1,0],[0,1]]]}",
      "{\"type\":\"Polygon\",\"coordinates\":[[[0,0],[1,0],[0,1]]]",
      "{\"type\":\"Polygon\",\"coordinates\":[[[0,0],[1,0],[0,1]]]} x",
      "{\"name\":\"\\q\"}",  // unsupported escape
      "{\"name\":\"unterminated",
      "truefalse",
  };
  for (const std::string& text : corpus) {
    SCOPED_TRACE("GeoJSON: \"" + text + '"');
    EXPECT_THROW((void)parse_geojson(text), IoError);
  }
}

TEST(ParserRobustness, GeoJsonDeepNestingHitsDepthLimitNotTheStack) {
  // 100k unclosed arrays: without a recursion bound this would overflow
  // the stack long before hitting end-of-input.
  const std::string bomb(100000, '[');
  EXPECT_THROW((void)parse_geojson(bomb), IoError);
  const std::string object_bomb =
      [] {
        std::string s;
        for (int i = 0; i < 100000; ++i) s += "{\"a\":";
        return s;
      }();
  EXPECT_THROW((void)parse_geojson(object_bomb), IoError);
}

// -------------------------------------------- file-based parsers

class ParserRobustnessFiles : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("zh_parser_fuzz_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string write(const std::string& name,
                                  const std::string& content) const {
    const std::string p = (dir_ / name).string();
    std::ofstream os(p, std::ios::binary);
    os << content;
    return p;
  }

  std::filesystem::path dir_;
};

TEST_F(ParserRobustnessFiles, AsciiGridCorpusThrowsIoError) {
  const std::pair<const char*, const char*> corpus[] = {
      {"empty.asc", ""},
      {"junk.asc", "not a grid at all"},
      {"truncated_header.asc", "ncols 5\nnrows"},
      {"no_dims.asc", "xllcorner 0\nyllcorner 0\ncellsize 1\n1 2 3"},
      {"negative_dims.asc",
       "ncols -3\nnrows 2\nxllcorner 0\nyllcorner 0\ncellsize 1\n1 2 3"},
      {"nonfinite_header.asc",
       "ncols 2\nnrows 2\nxllcorner nan\nyllcorner 0\ncellsize 1\n"
       "1 2 3 4"},
      {"truncated_data.asc",
       "ncols 3\nnrows 2\nxllcorner 0\nyllcorner 0\ncellsize 1\n1 2 3 4"},
      {"negative_cell.asc",
       "ncols 2\nnrows 1\nxllcorner 0\nyllcorner 0\ncellsize 1\n1 -7"},
      {"overflow_cell.asc",
       "ncols 2\nnrows 1\nxllcorner 0\nyllcorner 0\ncellsize 1\n1 70000"},
      {"alpha_cell.asc",
       "ncols 2\nnrows 1\nxllcorner 0\nyllcorner 0\ncellsize 1\n1 x"},
  };
  for (const auto& [name, content] : corpus) {
    SCOPED_TRACE(name);
    EXPECT_THROW((void)read_ascii_grid(write(name, content)), IoError);
  }
}

TEST_F(ParserRobustnessFiles, AsciiGridAbsurdDimsRejectedBeforeAllocating) {
  // Headers declaring ~10^18 cells in a 60-byte file: the size guard
  // must fire before any attempt to allocate the raster (OOM killer
  // territory otherwise).
  const std::string p = write(
      "huge.asc",
      "ncols 1000000000\nnrows 1000000000\n"
      "xllcorner 0\nyllcorner 0\ncellsize 1\n0");
  EXPECT_THROW((void)read_ascii_grid(p), IoError);
  const std::string q = write(
      "huge2.asc",
      "ncols 99999999999999\nnrows 2\n"
      "xllcorner 0\nyllcorner 0\ncellsize 1\n0");
  EXPECT_THROW((void)read_ascii_grid(q), IoError);
}

TEST_F(ParserRobustnessFiles, PointsCsvCorpusThrowsIoError) {
  const std::pair<const char*, const char*> corpus[] = {
      {"empty.csv", ""},
      {"bad_header.csv", "lon,lat\n1,2"},
      {"semicolons.csv", "x,y\n1;2"},
      {"alpha.csv", "x,y\nabc,2"},
      {"missing_col.csv", "x,y,weight\n1,2\n"},
  };
  for (const auto& [name, content] : corpus) {
    SCOPED_TRACE(name);
    EXPECT_THROW((void)read_points_csv(write(name, content)), IoError);
  }
}

TEST_F(ParserRobustnessFiles, PolygonTsvCorpusThrowsIoError) {
  const std::pair<const char*, const char*> corpus[] = {
      {"no_tab.tsv", "zoneA POLYGON ((0 0, 1 0, 0 1))"},
      {"bad_wkt.tsv", "zoneA\tPOLYGON (("},
      {"nan_wkt.tsv", "zoneA\tPOLYGON ((nan 0, 1 0, 0 1))"},
  };
  for (const auto& [name, content] : corpus) {
    SCOPED_TRACE(name);
    EXPECT_THROW((void)read_polygon_tsv(write(name, content)), IoError);
  }
}

}  // namespace
}  // namespace zh
