#include <gtest/gtest.h>

#include "geom/wkt.hpp"

namespace zh {
namespace {

TEST(Wkt, ParsesSimplePolygon) {
  const Polygon p = parse_wkt("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))");
  ASSERT_EQ(p.ring_count(), 1u);
  EXPECT_EQ(p.rings()[0].size(), 4u);  // closing vertex stripped
  EXPECT_DOUBLE_EQ(p.rings()[0][1].x, 4.0);
  EXPECT_DOUBLE_EQ(p.area(), 16.0);
}

TEST(Wkt, ParsesPolygonWithHole) {
  const Polygon p = parse_wkt(
      "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (2 2, 4 2, 4 4, 2 4, 2 2))");
  ASSERT_EQ(p.ring_count(), 2u);
  EXPECT_EQ(p.rings()[1].size(), 4u);
}

TEST(Wkt, ParsesMultiPolygonAsFlattenedRings) {
  const Polygon p = parse_wkt(
      "MULTIPOLYGON (((0 0, 1 0, 1 1, 0 0)), ((5 5, 6 5, 6 6, 5 5)))");
  ASSERT_EQ(p.ring_count(), 2u);
}

TEST(Wkt, CaseInsensitiveKeywordAndNegativeCoords) {
  const Polygon p =
      parse_wkt("polygon((-125.5 49.25, -124 49.25, -124 50, -125.5 49.25))");
  ASSERT_EQ(p.ring_count(), 1u);
  EXPECT_DOUBLE_EQ(p.rings()[0][0].x, -125.5);
}

TEST(Wkt, ScientificNotation) {
  const Polygon p =
      parse_wkt("POLYGON ((1e-3 0.5, 2.5e2 0.5, 1 1, 1e-3 0.5))");
  EXPECT_DOUBLE_EQ(p.rings()[0][0].x, 0.001);
  EXPECT_DOUBLE_EQ(p.rings()[0][1].x, 250.0);
}

TEST(Wkt, UnclosedRingIsAccepted) {
  // Some producers omit the closing vertex; both forms must parse alike.
  const Polygon a = parse_wkt("POLYGON ((0 0, 4 0, 4 4))");
  const Polygon b = parse_wkt("POLYGON ((0 0, 4 0, 4 4, 0 0))");
  EXPECT_EQ(a.rings()[0].size(), b.rings()[0].size());
}

TEST(Wkt, RoundTripPreservesGeometry) {
  Polygon p = parse_wkt(
      "POLYGON ((0.125 0.25, 10 0.5, 10.75 10, 0.5 10, 0.125 0.25), "
      "(2 2, 4 2.5, 4 4, 2 4, 2 2))");
  const Polygon q = parse_wkt(to_wkt(p));
  ASSERT_EQ(q.ring_count(), p.ring_count());
  for (std::size_t r = 0; r < p.ring_count(); ++r) {
    ASSERT_EQ(q.rings()[r].size(), p.rings()[r].size());
    for (std::size_t i = 0; i < p.rings()[r].size(); ++i) {
      EXPECT_DOUBLE_EQ(q.rings()[r][i].x, p.rings()[r][i].x);
      EXPECT_DOUBLE_EQ(q.rings()[r][i].y, p.rings()[r][i].y);
    }
  }
}

TEST(Wkt, MalformedInputsThrow) {
  EXPECT_THROW(parse_wkt("LINESTRING (0 0, 1 1)"), IoError);
  EXPECT_THROW(parse_wkt("POLYGON ((0 0, 1 1))"), IoError);  // < 3 verts
  EXPECT_THROW(parse_wkt("POLYGON ((0 0, 1 1, 2 2"), IoError);
  EXPECT_THROW(parse_wkt("POLYGON ((0 0, 1 1, x 2))"), IoError);
  EXPECT_THROW(parse_wkt("POLYGON ((0 0, 1 0, 1 1)) trailing"), IoError);
  EXPECT_THROW(parse_wkt(""), IoError);
}

}  // namespace
}  // namespace zh
