#include <gtest/gtest.h>

#include "core/lazy_pipeline.hpp"
#include "data/dem_synth.hpp"
#include "test_util.hpp"

namespace zh {
namespace {

struct LazyCase {
  std::uint32_t seed;
  std::int64_t tile;
  int zone_count;
  bool holes;
};

class LazySweep : public ::testing::TestWithParam<LazyCase> {};

INSTANTIATE_TEST_SUITE_P(Cases, LazySweep,
                         ::testing::Values(LazyCase{1, 10, 6, false},
                                           LazyCase{2, 16, 10, true},
                                           LazyCase{3, 7, 3, true},
                                           LazyCase{4, 32, 1, false}));

TEST_P(LazySweep, MatchesEagerCompressedRun) {
  const LazyCase c = GetParam();
  Device dev;
  const DemRaster raster = generate_dem(
      96, 112, GeoTransform(0.0, 9.6, 0.1, 0.1),
      {.seed = c.seed, .max_value = 199});
  const BqCompressedRaster compressed =
      BqCompressedRaster::encode(raster, c.tile);
  const PolygonSet zones = test::random_polygon_set(
      c.seed * 7, GeoBox{0.5, 0.5, 10.7, 9.1}, c.zone_count, c.holes);

  const ZonalConfig cfg{.tile_size = c.tile, .bins = 200};
  LazyCounters counters;
  const ZonalResult lazy =
      run_lazy(dev, compressed, zones, cfg, &counters);
  const ZonalPipeline pipe(dev, cfg);
  const ZonalResult eager = pipe.run(compressed, zones);

  EXPECT_EQ(lazy.per_polygon, eager.per_polygon);
  EXPECT_EQ(lazy.work.pairs_inside, eager.work.pairs_inside);
  EXPECT_EQ(lazy.work.pairs_intersect, eager.work.pairs_intersect);
  EXPECT_EQ(counters.tiles_total,
            static_cast<std::uint64_t>(compressed.tiling().tile_count()));
  EXPECT_LE(counters.tiles_decoded, counters.tiles_total);
  EXPECT_LE(counters.tiles_histogrammed, counters.tiles_decoded);
}

TEST(LazyPipeline, SkipsTilesOutsideEveryZone) {
  Device dev;
  // Zones confined to the western quarter: most tiles stay compressed.
  const DemRaster raster = generate_dem(
      80, 160, GeoTransform(0.0, 8.0, 0.1, 0.1), {.max_value = 99});
  const BqCompressedRaster compressed =
      BqCompressedRaster::encode(raster, 8);
  const PolygonSet zones = test::random_polygon_set(
      5, GeoBox{0.3, 0.3, 3.7, 7.7}, 5, false);

  LazyCounters counters;
  const ZonalResult lazy = run_lazy(dev, compressed, zones,
                                    {.tile_size = 8, .bins = 100},
                                    &counters);
  EXPECT_GT(counters.tiles_decoded, 0u);
  EXPECT_LT(counters.tiles_decoded, counters.tiles_total / 2)
      << "western zones should leave most of the raster compressed";
  // And still exact.
  const ZonalPipeline pipe(dev, {.tile_size = 8, .bins = 100});
  EXPECT_EQ(lazy.per_polygon, pipe.run(raster, zones).per_polygon);
}

TEST(LazyPipeline, EmptyZoneLayerDecodesNothing) {
  Device dev;
  const DemRaster raster = test::random_raster(40, 40, 1, 9);
  const BqCompressedRaster compressed =
      BqCompressedRaster::encode(raster, 8);
  LazyCounters counters;
  const ZonalResult r = run_lazy(dev, compressed, PolygonSet{},
                                 {.tile_size = 8, .bins = 10}, &counters);
  EXPECT_EQ(counters.tiles_decoded, 0u);
  EXPECT_EQ(counters.cells_decoded, 0u);
  EXPECT_EQ(r.per_polygon.groups(), 0u);
}

TEST(LazyPipeline, TileSizeMismatchThrows) {
  Device dev;
  const DemRaster raster = test::random_raster(40, 40, 1, 9);
  const BqCompressedRaster compressed =
      BqCompressedRaster::encode(raster, 8);
  EXPECT_THROW(run_lazy(dev, compressed, PolygonSet{},
                        {.tile_size = 10, .bins = 10}),
               InvalidArgument);
}

}  // namespace
}  // namespace zh
