#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "io/ascii_grid.hpp"
#include "io/vector_io.hpp"
#include "io/zgrid.hpp"
#include "test_util.hpp"

namespace zh {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("zh_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

TEST_F(IoTest, ZgridRoundTrip) {
  DemRaster r = test::random_raster(37, 53, 1, 9000,
                                    GeoTransform(-110.25, 45.5, 0.01, 0.02));
  r.set_nodata(CellValue{65535});
  write_zgrid(path("a.zgrid"), r);
  const DemRaster back = read_zgrid(path("a.zgrid"));
  EXPECT_EQ(back, r);
}

TEST_F(IoTest, ZgridWithoutNodata) {
  const DemRaster r = test::random_raster(5, 5, 2, 10);
  write_zgrid(path("b.zgrid"), r);
  const DemRaster back = read_zgrid(path("b.zgrid"));
  EXPECT_FALSE(back.nodata().has_value());
  EXPECT_EQ(back, r);
}

TEST_F(IoTest, ZgridRejectsMissingFile) {
  EXPECT_THROW(read_zgrid(path("missing.zgrid")), IoError);
}

TEST_F(IoTest, ZgridRejectsBadMagic) {
  std::ofstream os(path("bad.zgrid"), std::ios::binary);
  os << "NOPEnope";
  os.close();
  EXPECT_THROW(read_zgrid(path("bad.zgrid")), IoError);
}

TEST_F(IoTest, ZgridRejectsTruncatedCells) {
  const DemRaster r = test::random_raster(10, 10, 3, 10);
  write_zgrid(path("t.zgrid"), r);
  std::filesystem::resize_file(path("t.zgrid"),
                               std::filesystem::file_size(path("t.zgrid")) -
                                   8);
  EXPECT_THROW(read_zgrid(path("t.zgrid")), IoError);
}

TEST_F(IoTest, AsciiGridRoundTrip) {
  DemRaster r = test::random_raster(12, 9, 4, 500,
                                    GeoTransform(-80.0, 35.0, 0.25, 0.25));
  r.set_nodata(CellValue{9999});
  write_ascii_grid(path("a.asc"), r);
  const DemRaster back = read_ascii_grid(path("a.asc"));
  EXPECT_EQ(back.rows(), r.rows());
  EXPECT_EQ(back.cols(), r.cols());
  EXPECT_EQ(back.nodata(), r.nodata());
  EXPECT_NEAR(back.transform().origin_x(), r.transform().origin_x(), 1e-9);
  EXPECT_NEAR(back.transform().origin_y(), r.transform().origin_y(), 1e-9);
  EXPECT_TRUE(std::equal(back.cells().begin(), back.cells().end(),
                         r.cells().begin()));
}

TEST_F(IoTest, AsciiGridRejectsNonSquareCells) {
  const DemRaster r(4, 4, GeoTransform(0, 4, 1.0, 2.0));
  EXPECT_THROW(write_ascii_grid(path("ns.asc"), r), InvalidArgument);
}

TEST_F(IoTest, AsciiGridRejectsMalformedHeader) {
  {
    std::ofstream os(path("h.asc"));
    os << "ncols 4\n1 2 3 4\n";
  }
  EXPECT_THROW(read_ascii_grid(path("h.asc")), IoError);
}

TEST_F(IoTest, AsciiGridRejectsOutOfRangeValue) {
  {
    std::ofstream os(path("v.asc"));
    os << "ncols 2\nnrows 1\nxllcorner 0\nyllcorner 0\ncellsize 1\n"
       << "1 70000\n";
  }
  EXPECT_THROW(read_ascii_grid(path("v.asc")), IoError);
}

TEST_F(IoTest, PolygonTsvRoundTrip) {
  PolygonSet set;
  set.add(Polygon({{{1, 1}, {4, 1}, {4, 4}, {1, 4}}}), "county A");
  Polygon multi({{{10, 10}, {20, 10}, {20, 20}}});
  multi.add_ring({{12, 12}, {14, 12}, {13, 14}});
  set.add(std::move(multi), "county B");

  write_polygon_tsv(path("polys.tsv"), set);
  const PolygonSet back = read_polygon_tsv(path("polys.tsv"));
  ASSERT_EQ(back.size(), set.size());
  for (PolygonId id = 0; id < set.size(); ++id) {
    EXPECT_EQ(back.name(id), set.name(id));
    ASSERT_EQ(back[id].ring_count(), set[id].ring_count());
    EXPECT_DOUBLE_EQ(back[id].area(), set[id].area());
  }
}

TEST_F(IoTest, PolygonTsvSkipsBlankLinesAndRejectsMissingTab) {
  {
    std::ofstream os(path("p1.tsv"));
    os << "\nA\tPOLYGON ((0 0, 1 0, 1 1, 0 0))\n\n";
  }
  EXPECT_EQ(read_polygon_tsv(path("p1.tsv")).size(), 1u);
  {
    std::ofstream os(path("p2.tsv"));
    os << "A POLYGON ((0 0, 1 0, 1 1, 0 0))\n";
  }
  EXPECT_THROW(read_polygon_tsv(path("p2.tsv")), IoError);
}

}  // namespace
}  // namespace zh
