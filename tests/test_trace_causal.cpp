// Cross-rank causal tracing: rank pinning at flush time, versioned
// trace-frame round-trips with duplicate-delivery dedup, the NTP-style
// clock-offset estimator, flow-graph validity of merged cluster traces
// under fault plans (crash mid-step, duplicate delivery), critical-path
// tiling invariants, and the zh_perf regression-differ semantics.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "cluster/fault.hpp"
#include "common/error.hpp"
#include "core/cluster_driver.hpp"
#include "data/county_synth.hpp"
#include "data/dem_synth.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "perf_diff.hpp"
#include "trace_analysis.hpp"

namespace zh {
namespace {

class TraceCausalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_trace_enabled(false);
    obs::trace_clear();
    obs::set_thread_rank(-1);
  }
  void TearDown() override {
    obs::set_trace_enabled(false);
    obs::trace_clear();
    obs::set_thread_rank(-1);
  }
};

TEST_F(TraceCausalTest, ClockOffsetHandshakeMath) {
  // remote ~= local + offset: t0/t3 bracket the probe locally, the
  // remote stamps the midpoint. offset = t_remote - (t0 + t3) / 2.
  EXPECT_EQ(obs::clock_offset_from_handshake(100, 1200, 300), 1000);
  EXPECT_EQ(obs::clock_offset_from_handshake(100, 200, 300), 0);
  EXPECT_EQ(obs::clock_offset_from_handshake(1000, 500, 1200), -600);
  // Zero RTT degenerates to a plain clock difference.
  EXPECT_EQ(obs::clock_offset_from_handshake(50, 80, 50), 30);
}

TEST_F(TraceCausalTest, ExportAppliesClockOffsetAndClamps) {
  obs::set_trace_enabled(true);
  obs::set_thread_rank(2);
  const std::int64_t t = obs::now_us();
  obs::record_span("work", "test", t, 10);
  // Rank 2's clock reads far ahead of the master's; export subtracts the
  // offset and clamps at zero rather than emitting negative timestamps.
  obs::set_rank_clock_offset_us(2, t + 1000000);
  const obs::JsonValue doc = obs::parse_json(obs::chrome_trace_json());
  const trace::TraceModel m = trace::load_trace(doc);
  ASSERT_EQ(m.spans.size(), 1u);
  EXPECT_EQ(m.spans[0].ts_us, 0);
}

// Satellite regression: a short-lived worker-rank thread records spans,
// then the buffer is flushed by infrastructure that must not depend on
// the flusher's (or a later ingester's) rank attribution. Events that
// never had a rank get pinned at flush time; events that had one keep it.
TEST_F(TraceCausalTest, TakeThreadEventsPinsUnattributedRank) {
  obs::set_trace_enabled(true);
  obs::set_thread_rank(-1);
  const std::int64_t t = obs::now_us();
  obs::record_span("unattributed", "test", t, 5);
  obs::set_thread_rank(2);
  obs::record_span("attributed", "test", t + 10, 5);

  const std::vector<obs::TraceEvent> taken = obs::take_thread_events(7);
  ASSERT_EQ(taken.size(), 2u);
  for (const obs::TraceEvent& e : taken) {
    if (std::string(e.name) == "unattributed") {
      EXPECT_EQ(e.rank, 7);  // pinned at flush time
    } else {
      EXPECT_EQ(e.rank, 2);  // explicit attribution survives
    }
  }
  // take removes: the thread buffer is now empty.
  EXPECT_TRUE(obs::take_thread_events(7).empty());
}

TEST_F(TraceCausalTest, EncodeIngestRoundTripPreservesRank) {
  obs::set_trace_enabled(true);
  obs::set_thread_rank(3);
  obs::record_span("partition", "cluster", obs::now_us(), 42);
  obs::record_flow('s', "comm.send", "comm", 99, obs::now_us());
  const std::vector<obs::TraceEvent> taken = obs::take_thread_events(3);
  ASSERT_EQ(taken.size(), 2u);
  const std::vector<std::byte> frame = obs::encode_trace_events(taken);

  obs::trace_clear();
  obs::set_thread_rank(0);  // the ingesting master is rank 0 ...
  obs::ingest_trace_events(frame);
  const std::vector<obs::TraceEvent> merged = obs::trace_snapshot();
  ASSERT_EQ(merged.size(), 2u);
  for (const obs::TraceEvent& e : merged) {
    EXPECT_EQ(e.rank, 3);  // ... but the events keep the recorder's rank
  }
  bool saw_span = false;
  bool saw_flow = false;
  for (const obs::TraceEvent& e : merged) {
    if (e.phase == 'X') {
      saw_span = true;
      EXPECT_STREQ(e.name, "partition");
      EXPECT_STREQ(e.cat, "cluster");
      EXPECT_EQ(e.dur_us, 42);
    } else {
      saw_flow = true;
      EXPECT_EQ(e.phase, 's');
      EXPECT_EQ(e.flow_id, 99u);
    }
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_flow);
}

TEST_F(TraceCausalTest, IngestDeduplicatesDuplicateFrames) {
  obs::set_trace_enabled(true);
  obs::set_thread_rank(1);
  obs::record_span("once", "test", obs::now_us(), 7);
  const std::vector<std::byte> frame =
      obs::encode_trace_events(obs::take_thread_events(1));

  obs::ingest_trace_events(frame);
  const std::size_t after_first = obs::trace_snapshot().size();
  obs::ingest_trace_events(frame);  // duplicate delivery of the same blob
  EXPECT_EQ(obs::trace_snapshot().size(), after_first);
}

TEST_F(TraceCausalTest, IngestRejectsMalformedFrames) {
  obs::set_trace_enabled(true);
  obs::record_span("victim", "test", obs::now_us(), 1);
  std::vector<std::byte> frame =
      obs::encode_trace_events(obs::take_thread_events(-1));
  ASSERT_GT(frame.size(), 4u);

  std::vector<std::byte> truncated(frame.begin(), frame.end() - 3);
  EXPECT_THROW(obs::ingest_trace_events(truncated), IoError);

  std::vector<std::byte> bad_magic = frame;
  bad_magic[0] = std::byte{0xFF};
  EXPECT_THROW(obs::ingest_trace_events(bad_magic), IoError);

  std::vector<std::byte> trailing = frame;
  trailing.push_back(std::byte{0});
  EXPECT_THROW(obs::ingest_trace_events(trailing), IoError);

  // Failed ingests must not leave partial events behind.
  EXPECT_TRUE(obs::trace_snapshot().empty());
}

TEST_F(TraceCausalTest, FlowEventsExportAndValidate) {
  obs::set_trace_enabled(true);
  const std::int64_t t = obs::now_us();
  obs::record_span("root", "test", t, 100);
  const std::uint64_t flow = obs::next_flow_id();
  obs::record_flow('s', "comm.send", "comm", flow, t + 10);
  obs::record_flow('f', "comm.recv", "comm", flow, t + 30);

  const trace::TraceModel m =
      trace::load_trace(obs::parse_json(obs::chrome_trace_json()));
  const trace::FlowCheck check = trace::validate_flows(m);
  EXPECT_TRUE(check.ok());
  EXPECT_EQ(check.sends, 1u);
  EXPECT_EQ(check.recvs, 1u);
  EXPECT_EQ(check.unmatched_sends, 0u);
}

TEST_F(TraceCausalTest, DanglingRecvFailsValidation) {
  obs::set_trace_enabled(true);
  const std::int64_t t = obs::now_us();
  obs::record_span("root", "test", t, 100);
  // An "f" whose "s" was never merged: the corruption the validator
  // exists to catch (a rank's flushed buffer went missing).
  obs::record_flow('f', "comm.recv", "comm", obs::next_flow_id(), t + 30);

  const trace::TraceModel m =
      trace::load_trace(obs::parse_json(obs::chrome_trace_json()));
  const trace::FlowCheck check = trace::validate_flows(m);
  EXPECT_FALSE(check.ok());
  EXPECT_EQ(check.dangling_recvs, 1u);
  ASSERT_FALSE(check.errors.empty());
}

TEST_F(TraceCausalTest, CriticalPathTilesSingleSpan) {
  trace::TraceModel m;
  m.spans.push_back({"run", "pipeline", 0, 1, 100, 900, 1, 0});
  m.begin_us = 100;
  m.end_us = 1000;
  const trace::CriticalPath cp = trace::critical_path(m);
  EXPECT_EQ(cp.wall_us, 900);
  EXPECT_EQ(cp.work_us, 900);
  EXPECT_EQ(cp.transit_us, 0);
  EXPECT_EQ(cp.idle_us, 0);
  EXPECT_DOUBLE_EQ(cp.coverage, 1.0);
  ASSERT_EQ(cp.segments.size(), 1u);
  EXPECT_EQ(cp.segments[0].name, "run");
}

TEST_F(TraceCausalTest, CriticalPathCrossesFlowEdge) {
  // Lane pid=1 works [0, 400], sends at 350; lane pid=2 receives at 500
  // and works until 1000. The path must jump through the flow edge:
  // work on pid 2 [500, 1000], transit [350, 500], work on pid 1 [0,350].
  trace::TraceModel m;
  m.spans.push_back({"producer", "cluster", 1, 1, 0, 400, 1, 0});
  m.spans.push_back({"consumer", "cluster", 2, 2, 500, 500, 2, 0});
  m.flows.push_back({7, 1, 1, 350, 's'});
  m.flows.push_back({7, 2, 2, 500, 'f'});
  m.begin_us = 0;
  m.end_us = 1000;

  const trace::CriticalPath cp = trace::critical_path(m);
  EXPECT_EQ(cp.wall_us, 1000);
  EXPECT_EQ(cp.work_us + cp.transit_us + cp.idle_us, cp.wall_us);
  EXPECT_GT(cp.transit_us, 0);
  EXPECT_DOUBLE_EQ(cp.coverage, 1.0);
  // Segments tile [begin, end] contiguously in wall-clock order.
  ASSERT_FALSE(cp.segments.empty());
  EXPECT_EQ(cp.segments.front().start_us, m.begin_us);
  EXPECT_EQ(cp.segments.back().end_us, m.end_us);
  for (std::size_t i = 1; i < cp.segments.size(); ++i) {
    EXPECT_EQ(cp.segments[i].start_us, cp.segments[i - 1].end_us);
  }
  bool saw_transit = false;
  for (const trace::PathSegment& s : cp.segments) {
    saw_transit |= s.kind == trace::PathSegment::Kind::kTransit;
  }
  EXPECT_TRUE(saw_transit);
}

// ---- merged cluster traces under fault plans ------------------------------

/// 96x96 raster split 2x2 with star counties: the recovery-test fixture.
struct Scenario {
  std::vector<DemRaster> rasters;
  std::vector<std::pair<int, int>> schemas = {{2, 2}};
  PolygonSet zones;

  Scenario() {
    const DemParams dp{.seed = 17, .max_value = 59};
    rasters.push_back(
        generate_dem(96, 96, GeoTransform(0.0, 9.6, 0.1, 0.1), dp));
    CountyParams cp;
    cp.seed = 4;
    cp.grid_x = 4;
    cp.grid_y = 4;
    zones = generate_counties(GeoBox{-0.5, -0.5, 10.1, 10.1}, cp);
  }

  [[nodiscard]] ClusterRunConfig config(std::size_t ranks) const {
    ClusterRunConfig cfg;
    cfg.ranks = ranks;
    cfg.zonal = {.tile_size = 16, .bins = 60};
    return cfg;
  }
};

/// Run the cluster under `cfg` with tracing on; return the merged model.
trace::TraceModel traced_run(const Scenario& sc, const ClusterRunConfig& cfg) {
  obs::trace_clear();
  obs::set_trace_enabled(true);
  (void)run_cluster_zonal(sc.rasters, sc.schemas, sc.zones, cfg);
  obs::set_trace_enabled(false);
  return trace::load_trace(obs::parse_json(obs::chrome_trace_json()));
}

void expect_valid_merged_trace(const trace::TraceModel& m) {
  const trace::FlowCheck check = trace::validate_flows(m);
  EXPECT_TRUE(check.ok()) << check.dangling_recvs << " dangling recv(s): "
                          << (check.errors.empty() ? "" : check.errors[0]);
  EXPECT_GT(check.sends, 0u);
  EXPECT_GT(check.recvs, 0u);
  EXPECT_EQ(m.dropped_events, 0u);

  // Spans from more than one rank made it into the merge.
  bool multi_pid = false;
  for (const trace::SpanRec& s : m.spans) {
    if (s.pid != m.spans.front().pid) multi_pid = true;
  }
  EXPECT_TRUE(multi_pid);

  // The critical path tiles the run: its segment durations sum to the
  // measured wall time (the ISSUE's 5% acceptance bound, met exactly
  // unless the defensive iteration cap fires).
  const trace::CriticalPath cp = trace::critical_path(m);
  EXPECT_GE(cp.coverage, 0.95);
  EXPECT_NEAR(static_cast<double>(cp.work_us + cp.transit_us + cp.idle_us),
              static_cast<double>(cp.wall_us),
              0.05 * static_cast<double>(cp.wall_us));
}

TEST_F(TraceCausalTest, MergedTraceValidUnderRankCrash) {
  const Scenario sc;
  ClusterRunConfig cfg = sc.config(4);
  cfg.fault_tolerance.enabled = true;
  cfg.fault_tolerance.worker_timeout_ms = 10000;
  cfg.fault_tolerance.faults.crash = {1, CrashPoint::kPartitionDone, 0};
  expect_valid_merged_trace(traced_run(sc, cfg));
}

TEST_F(TraceCausalTest, MergedTraceValidUnderDuplicateDelivery) {
  const Scenario sc;
  ClusterRunConfig cfg = sc.config(4);
  cfg.fault_tolerance.enabled = true;
  cfg.fault_tolerance.worker_timeout_ms = 10000;
  cfg.fault_tolerance.faults = FaultPlan::parse("seed=9,dup=1.0");
  expect_valid_merged_trace(traced_run(sc, cfg));
}

TEST_F(TraceCausalTest, MergedTraceValidUnderDropStorm) {
  const Scenario sc;
  ClusterRunConfig cfg = sc.config(4);
  cfg.fault_tolerance.enabled = true;
  cfg.fault_tolerance.worker_timeout_ms = 10000;
  cfg.fault_tolerance.faults =
      FaultPlan::parse("seed=9,drop=0.15,dup=0.1,reorder=0.1");
  expect_valid_merged_trace(traced_run(sc, cfg));
}

TEST_F(TraceCausalTest, RankBreakdownCoversClusterRanks) {
  const Scenario sc;
  ClusterRunConfig cfg = sc.config(3);
  cfg.fault_tolerance.enabled = true;
  cfg.fault_tolerance.worker_timeout_ms = 10000;
  const trace::TraceModel m = traced_run(sc, cfg);
  const trace::CriticalPath cp = trace::critical_path(m);
  const std::vector<trace::RankStats> ranks = trace::rank_breakdown(m, cp);
  ASSERT_FALSE(ranks.empty());
  std::int64_t crit_work = 0;
  for (const trace::RankStats& r : ranks) {
    EXPECT_GE(r.utilization, 0.0);
    EXPECT_LE(r.utilization, 1.0 + 1e-9);
    crit_work += r.crit_work_us;
  }
  EXPECT_EQ(crit_work, cp.work_us);  // path work fully attributed
}

// ---- zh_perf regression-differ semantics -----------------------------------

obs::JsonValue report_with_times(const std::string& times_body) {
  return obs::parse_json("{\"schema\":\"zh-run-report-v1\",\"times_s\":{" +
                         times_body + "}}");
}

TEST_F(TraceCausalTest, PerfCompareFlagsRegressionBeyondTolerance) {
  perf::PerfOptions opts;  // 10% tolerance, 0.05s floor
  const obs::JsonValue base = report_with_times("\"step4\":1.0");
  const perf::PerfComparison slow = perf::compare_reports(
      base, report_with_times("\"step4\":1.2"), opts);
  EXPECT_EQ(slow.regressions, 1u);
  ASSERT_EQ(slow.entries.size(), 1u);
  EXPECT_TRUE(slow.entries[0].regressed);
  EXPECT_NEAR(slow.entries[0].delta_pct, 20.0, 1e-9);

  const perf::PerfComparison ok = perf::compare_reports(
      base, report_with_times("\"step4\":1.05"), opts);
  EXPECT_EQ(ok.regressions, 0u);

  const perf::PerfComparison faster = perf::compare_reports(
      base, report_with_times("\"step4\":0.5"), opts);
  EXPECT_EQ(faster.regressions, 0u);
  EXPECT_LT(faster.entries[0].delta_pct, 0.0);
}

TEST_F(TraceCausalTest, PerfCompareNoiseFloorNeverFails) {
  perf::PerfOptions opts;
  // 4x growth, but both sides under the 0.05s floor: jitter, not signal.
  const perf::PerfComparison cmp = perf::compare_reports(
      report_with_times("\"step2\":0.01"), report_with_times("\"step2\":0.04"),
      opts);
  EXPECT_EQ(cmp.regressions, 0u);
  ASSERT_EQ(cmp.entries.size(), 1u);
  EXPECT_TRUE(cmp.entries[0].below_floor);
  EXPECT_FALSE(cmp.entries[0].regressed);
}

TEST_F(TraceCausalTest, PerfCompareNotesSchemaAndKeyMismatches) {
  perf::PerfOptions opts;
  const obs::JsonValue base =
      report_with_times("\"step0\":1.0,\"step1\":2.0");
  const obs::JsonValue cur = obs::parse_json(
      "{\"schema\":\"wrong\",\"times_s\":{\"step0\":1.0,\"extra\":3.0}}");
  const perf::PerfComparison cmp = perf::compare_reports(base, cur, opts);
  EXPECT_EQ(cmp.regressions, 0u);
  EXPECT_EQ(cmp.entries.size(), 1u);  // only the shared key compares
  // Three notes: bad schema, step1 missing from current, extra missing
  // from baseline.
  EXPECT_EQ(cmp.notes.size(), 3u);
}

TEST_F(TraceCausalTest, PerfCompareCounterDriftIsInformational) {
  perf::PerfOptions opts;
  const obs::JsonValue base = obs::parse_json(
      "{\"schema\":\"zh-run-report-v1\",\"times_s\":{\"step0\":1.0},"
      "\"counters\":{\"pip_edge_tests\":100}}");
  const obs::JsonValue cur = obs::parse_json(
      "{\"schema\":\"zh-run-report-v1\",\"times_s\":{\"step0\":1.0},"
      "\"counters\":{\"pip_edge_tests\":200}}");
  const perf::PerfComparison cmp = perf::compare_reports(base, cur, opts);
  EXPECT_EQ(cmp.regressions, 0u);  // counters never gate
  ASSERT_EQ(cmp.notes.size(), 1u);
  EXPECT_NE(cmp.notes[0].find("pip_edge_tests"), std::string::npos);
}

}  // namespace
}  // namespace zh
