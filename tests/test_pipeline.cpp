// End-to-end pipeline properties (DESIGN.md invariants 1-2): the 4-step
// GPU pipeline computes *exactly* the per-cell-PIP result across tile
// sizes, bin counts, polygon shapes and compression, and conserves cell
// counts on space-filling zone layers.
#include <gtest/gtest.h>

#include "core/baseline.hpp"
#include "core/pipeline.hpp"
#include "data/county_synth.hpp"
#include "data/dem_synth.hpp"
#include "test_util.hpp"

namespace zh {
namespace {

struct Config {
  std::int64_t tile_size;
  BinIndex bins;
  std::uint32_t seed;
  bool holes;
};

class PipelineSweep : public ::testing::TestWithParam<Config> {};

INSTANTIATE_TEST_SUITE_P(
    Configs, PipelineSweep,
    ::testing::Values(Config{5, 100, 1, false}, Config{10, 100, 2, true},
                      Config{16, 50, 3, false}, Config{32, 200, 4, true},
                      Config{64, 100, 5, false},
                      Config{128, 100, 6, true},   // single-tile regime
                      Config{7, 100, 7, true}));   // non-dividing tile size

TEST_P(PipelineSweep, MatchesPerCellPipBaselineExactly) {
  const Config cfg = GetParam();
  Device dev;
  const DemRaster raster = test::random_raster(
      90, 110, cfg.seed, static_cast<CellValue>(cfg.bins - 1),
      GeoTransform(0.0, 9.0, 0.1, 0.1));
  const PolygonSet polys = test::random_polygon_set(
      cfg.seed * 31, GeoBox{0.5, 0.5, 10.5, 8.5}, 10, cfg.holes);

  const ZonalPipeline pipe(dev, {.tile_size = cfg.tile_size,
                                 .bins = cfg.bins});
  const ZonalResult result = pipe.run(raster, polys);
  const HistogramSet expect = zonal_mbb_filter(raster, polys, cfg.bins);
  EXPECT_EQ(result.per_polygon, expect);
}

TEST_P(PipelineSweep, CompressedInputGivesIdenticalResult) {
  const Config cfg = GetParam();
  Device dev;
  const DemRaster raster = generate_dem(
      90, 110, GeoTransform(0.0, 9.0, 0.1, 0.1),
      {.seed = cfg.seed, .max_value =
           static_cast<CellValue>(cfg.bins - 1)});
  const PolygonSet polys = test::random_polygon_set(
      cfg.seed * 77, GeoBox{0.5, 0.5, 10.5, 8.5}, 6, cfg.holes);

  const ZonalPipeline pipe(dev, {.tile_size = cfg.tile_size,
                                 .bins = cfg.bins});
  const ZonalResult raw = pipe.run(raster, polys);
  const BqCompressedRaster compressed =
      BqCompressedRaster::encode(raster, cfg.tile_size);
  const ZonalResult fromc = pipe.run(compressed, polys);
  EXPECT_EQ(raw.per_polygon, fromc.per_polygon);
  EXPECT_GT(fromc.work.compressed_bytes, 0u);
  EXPECT_EQ(fromc.work.raw_bytes,
            static_cast<std::uint64_t>(raster.cell_count()) * 2);
}

TEST(Pipeline, ConservationOnSpaceFillingZones) {
  // Synthetic counties tessellate the extent; every interior cell center
  // belongs to <= 1 zone and nearly all to exactly 1 (snapping slivers
  // aside), so the summed histogram mass must be within a whisker of the
  // raster size -- and never above it by more than the sliver allowance.
  Device dev;
  const GeoTransform t(0.0, 12.0, 0.05, 0.05);  // 240x320 cells
  const DemRaster raster =
      generate_dem(240, 320, t, {.seed = 3, .max_value = 99});
  CountyParams cp;
  cp.grid_x = 6;
  cp.grid_y = 4;
  // Zone extent overhangs the raster so every raster cell is interior to
  // the tessellation (and no zone vertex can hit the (0,0) SoA sentinel).
  const PolygonSet zones =
      generate_counties(GeoBox{-0.5, -0.5, 16.5, 12.5}, cp);

  const ZonalPipeline pipe(dev, {.tile_size = 20, .bins = 100});
  const ZonalResult r = pipe.run(raster, zones);

  const auto cells = static_cast<BinCount64>(raster.cell_count());
  EXPECT_GE(r.per_polygon.total(), cells * 999 / 1000);
  EXPECT_LE(r.per_polygon.total(), cells + cells / 1000);
  // And the result is still exactly the PIP reference.
  EXPECT_EQ(r.per_polygon, zonal_mbb_filter(raster, zones, 100));
}

TEST(Pipeline, WorkCountersAreConsistent) {
  Device dev;
  const DemRaster raster = test::random_raster(
      100, 100, 9, 49, GeoTransform(0.0, 10.0, 0.1, 0.1));
  const PolygonSet polys = test::random_polygon_set(
      5, GeoBox{1.0, 1.0, 9.0, 9.0}, 8, false);
  const ZonalPipeline pipe(dev, {.tile_size = 10, .bins = 50});
  const ZonalResult r = pipe.run(raster, polys);

  EXPECT_EQ(r.work.cells_total, 10'000u);
  EXPECT_EQ(r.work.tiles_total, 100u);
  EXPECT_EQ(r.work.polygon_vertices, polys.vertex_count());
  EXPECT_GE(r.work.candidate_pairs,
            r.work.pairs_inside + r.work.pairs_intersect);
  EXPECT_EQ(r.work.aggregate_bin_adds, r.work.pairs_inside * 50);
  // Each intersect pair contributes tile_cells cell tests (10x10 tiles).
  EXPECT_EQ(r.work.pip_cell_tests, r.work.pairs_intersect * 100);
  EXPECT_GT(r.work.pip_edge_tests, 0u);
  EXPECT_EQ(r.work.cells_in_polygons, r.per_polygon.total());
}

TEST(Pipeline, StepTimesArePopulated) {
  Device dev;
  const DemRaster raster = test::random_raster(
      60, 60, 2, 19, GeoTransform(0.0, 6.0, 0.1, 0.1));
  const PolygonSet polys =
      test::random_polygon_set(8, GeoBox{1, 1, 5, 5}, 4, false);
  const ZonalPipeline pipe(dev, {.tile_size = 10, .bins = 20});

  const ZonalResult raw = pipe.run(raster, polys);
  EXPECT_EQ(raw.times.seconds[0], 0.0);  // no decompression step
  for (std::size_t s = 1; s < StepTimes::kSteps; ++s) {
    EXPECT_GE(raw.times.seconds[s], 0.0);
  }
  EXPECT_GT(raw.times.step_total(), 0.0);

  const BqCompressedRaster comp = BqCompressedRaster::encode(raster, 10);
  const ZonalResult fromc = pipe.run(comp, polys);
  EXPECT_GT(fromc.times.seconds[0], 0.0);
}

TEST(Pipeline, EmptyPolygonSet) {
  Device dev;
  const DemRaster raster = test::random_raster(30, 30, 1, 9);
  const ZonalPipeline pipe(dev, {.tile_size = 10, .bins = 10});
  const ZonalResult r = pipe.run(raster, PolygonSet{});
  EXPECT_EQ(r.per_polygon.groups(), 0u);
  EXPECT_EQ(r.work.candidate_pairs, 0u);
}

TEST(Pipeline, MismatchedCompressedTilingThrows) {
  Device dev;
  const DemRaster raster = test::random_raster(30, 30, 1, 9);
  const BqCompressedRaster comp = BqCompressedRaster::encode(raster, 15);
  const ZonalPipeline pipe(dev, {.tile_size = 10, .bins = 10});
  EXPECT_THROW(pipe.run(comp, PolygonSet{}), InvalidArgument);
}

TEST(Pipeline, MismatchedSoaThrows) {
  Device dev;
  const DemRaster raster = test::random_raster(30, 30, 1, 9);
  PolygonSet polys;
  polys.add(Polygon({{{1, 1}, {2, 1}, {2, 2}}}));
  const PolygonSoA empty_soa = PolygonSoA::build(PolygonSet{});
  const ZonalPipeline pipe(dev, {.tile_size = 10, .bins = 10});
  EXPECT_THROW(pipe.run(raster, polys, empty_soa), InvalidArgument);
}

TEST(Pipeline, RejectsBadConfig) {
  Device dev;
  EXPECT_THROW(ZonalPipeline(dev, {.tile_size = 0, .bins = 10}),
               InvalidArgument);
  EXPECT_THROW(ZonalPipeline(dev, {.tile_size = 10, .bins = 0}),
               InvalidArgument);
}

TEST(Pipeline, PrivatizedCountModeGivesSameResult) {
  Device dev;
  const DemRaster raster = test::random_raster(
      50, 50, 13, 29, GeoTransform(0.0, 5.0, 0.1, 0.1));
  const PolygonSet polys =
      test::random_polygon_set(6, GeoBox{0.5, 0.5, 4.5, 4.5}, 5, true);
  const ZonalPipeline a(dev, {.tile_size = 10, .bins = 30,
                              .count_mode = CountMode::kAtomic});
  const ZonalPipeline b(dev, {.tile_size = 10, .bins = 30,
                              .count_mode = CountMode::kPrivatized});
  EXPECT_EQ(a.run(raster, polys).per_polygon,
            b.run(raster, polys).per_polygon);
}

}  // namespace
}  // namespace zh
