// Terrain derivatives and GeoJSON I/O.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "data/dem_synth.hpp"
#include "grid/terrain.hpp"
#include "io/geojson.hpp"
#include "test_util.hpp"

namespace zh {
namespace {

TEST(Terrain, FlatDemHasZeroSlopeAndFlatAspect) {
  DemRaster dem(10, 10);
  for (CellValue& v : dem.cells()) v = 500;
  const auto slope = slope_degrees(dem, {.cell_distance = 30.0});
  const auto aspect = aspect_sectors(dem, {.cell_distance = 30.0});
  for (const CellValue s : slope.cells()) EXPECT_EQ(s, 0);
  for (const CellValue a : aspect.cells()) EXPECT_EQ(a, 8);
}

TEST(Terrain, UniformRampSlopeMatchesAnalytic) {
  // Elevation increases 30 per cell eastwards with 30 m cells: gradient
  // 1.0 -> slope = atan(1) = 45 degrees away from the borders.
  DemRaster dem(10, 20);
  for (std::int64_t r = 0; r < 10; ++r) {
    for (std::int64_t c = 0; c < 20; ++c) {
      dem.at(r, c) = static_cast<CellValue>(30 * c);
    }
  }
  const auto slope = slope_degrees(dem, {.cell_distance = 30.0});
  for (std::int64_t r = 1; r < 9; ++r) {
    for (std::int64_t c = 1; c < 19; ++c) {
      EXPECT_EQ(slope.at(r, c), 45) << r << "," << c;
    }
  }
}

TEST(Terrain, AspectPointsDownhill) {
  // Elevation increases northwards -> downslope faces south (sector 4).
  DemRaster dem(20, 10);
  for (std::int64_t r = 0; r < 20; ++r) {
    for (std::int64_t c = 0; c < 10; ++c) {
      dem.at(r, c) = static_cast<CellValue>(30 * (20 - r));
    }
  }
  const auto aspect = aspect_sectors(dem, {.cell_distance = 30.0});
  EXPECT_EQ(aspect.at(10, 5), 4);

  // Elevation increases eastwards -> downslope faces west (sector 6).
  DemRaster dem2(10, 20);
  for (std::int64_t r = 0; r < 10; ++r) {
    for (std::int64_t c = 0; c < 20; ++c) {
      dem2.at(r, c) = static_cast<CellValue>(30 * c);
    }
  }
  EXPECT_EQ(aspect_sectors(dem2, {.cell_distance = 30.0}).at(5, 10), 6);
}

TEST(Terrain, SlopeWithinPhysicalRange) {
  const DemRaster dem = generate_dem(
      100, 100, GeoTransform(0.0, 1.0, 0.01, 0.01));
  const auto slope = slope_degrees(dem, {.cell_distance = 30.0});
  for (const CellValue s : slope.cells()) ASSERT_LE(s, 90);
  EXPECT_THROW(slope_degrees(dem, {.cell_distance = 0.0}),
               InvalidArgument);
}

TEST(GeoJson, ParsesPolygonFeatureCollection) {
  const PolygonSet set = parse_geojson(R"({
    "type": "FeatureCollection",
    "features": [
      {"type": "Feature",
       "properties": {"name": "alpha", "pop": 12},
       "geometry": {"type": "Polygon",
         "coordinates": [[[0,0],[4,0],[4,4],[0,4],[0,0]]]}},
      {"type": "Feature",
       "properties": {},
       "geometry": {"type": "MultiPolygon",
         "coordinates": [[[[10,10],[12,10],[12,12],[10,10]]],
                          [[[20,20],[22,20],[22,22],[20,20]]]]}}
    ]})");
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set.name(0), "alpha");
  EXPECT_EQ(set.name(1), "feature1");
  EXPECT_DOUBLE_EQ(set[0].area(), 16.0);
  EXPECT_EQ(set[1].ring_count(), 2u);  // flattened multipolygon
}

TEST(GeoJson, ParsesBareGeometryAndSingleFeature) {
  const PolygonSet bare = parse_geojson(
      R"({"type":"Polygon","coordinates":[[[0,0],[1,0],[1,1],[0,0]]]})");
  ASSERT_EQ(bare.size(), 1u);
  const PolygonSet feat = parse_geojson(
      R"({"type":"Feature","properties":{"name":"x"},
          "geometry":{"type":"Polygon",
                      "coordinates":[[[0,0],[1,0],[1,1],[0,0]]]}})");
  EXPECT_EQ(feat.name(0), "x");
}

TEST(GeoJson, RoundTripPreservesGeometryAndNames) {
  PolygonSet set;
  Polygon p({{{0.5, 0.25}, {10, 0.5}, {10.75, 10}, {0.5, 10}}});
  p.add_ring({{2, 2}, {4, 2.5}, {4, 4}, {2, 4}});
  set.add(std::move(p), "county \"A\"");
  set.add(Polygon({{{-5, -5}, {-4, -5}, {-4, -4}}}), "B");

  const PolygonSet back = parse_geojson(to_geojson(set));
  ASSERT_EQ(back.size(), set.size());
  for (PolygonId id = 0; id < set.size(); ++id) {
    EXPECT_EQ(back.name(id), set.name(id));
    ASSERT_EQ(back[id].ring_count(), set[id].ring_count());
    EXPECT_DOUBLE_EQ(back[id].area(), set[id].area());
  }
}

TEST(GeoJson, FileRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("zh_geojson_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "zones.geojson").string();
  const PolygonSet set = test::random_polygon_set(
      4, GeoBox{0.5, 0.5, 9.5, 9.5}, 5, true);
  write_geojson(path, set);
  const PolygonSet back = read_geojson(path);
  ASSERT_EQ(back.size(), set.size());
  for (PolygonId id = 0; id < set.size(); ++id) {
    EXPECT_DOUBLE_EQ(back[id].area(), set[id].area());
  }
  std::filesystem::remove_all(dir);
}

TEST(GeoJson, MalformedInputsThrow) {
  EXPECT_THROW(parse_geojson(""), IoError);
  EXPECT_THROW(parse_geojson("[1,2,3]"), IoError);
  EXPECT_THROW(parse_geojson(R"({"type":"Point","coordinates":[1,2]})"),
               IoError);
  EXPECT_THROW(parse_geojson(R"({"type":"FeatureCollection"})"), IoError);
  EXPECT_THROW(
      parse_geojson(
          R"({"type":"Polygon","coordinates":[[[0,0],[1,1]]]})"),
      IoError);
  EXPECT_THROW(parse_geojson(R"({"type":"Polygon","coordinates":[[[0,0],
               [1,0],[1,1],[0,0]]]} trailing)"),
               IoError);
  EXPECT_THROW(read_geojson("/nonexistent/x.geojson"), IoError);
}

TEST(GeoJson, StringEscapes) {
  const PolygonSet set = parse_geojson(R"({
    "type": "Feature",
    "properties": {"name": "a\"b\\c\ndA"},
    "geometry": {"type":"Polygon",
                 "coordinates":[[[0,0],[1,0],[1,1],[0,0]]]}})");
  EXPECT_EQ(set.name(0), "a\"b\\c\nd" "A");
}

}  // namespace
}  // namespace zh
