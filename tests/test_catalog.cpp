#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "core/baseline.hpp"
#include "data/dem_synth.hpp"
#include "io/bq_file.hpp"
#include "io/catalog.hpp"
#include "io/vector_io.hpp"
#include "test_util.hpp"

namespace zh {
namespace {

class CatalogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("zh_catalog_" + std::to_string(::getpid())))
               .string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(CatalogTest, WriteOpenRoundTrip) {
  const DemRaster a = generate_dem(64, 64, GeoTransform(0.0, 6.4, 0.1,
                                                        0.1));
  const DemRaster b = generate_dem(64, 96, GeoTransform(6.4, 6.4, 0.1,
                                                        0.1));
  const BqCompressedRaster ca = BqCompressedRaster::encode(a, 8);
  const BqCompressedRaster cb = BqCompressedRaster::encode(b, 8);
  const PolygonSet zones = test::random_polygon_set(
      3, GeoBox{0.5, 0.5, 15.5, 5.9}, 4, true);

  write_catalog(dir_, {{"west", &ca}, {"east", &cb}}, zones);
  const Catalog catalog = open_catalog(dir_);
  EXPECT_EQ(catalog.raster_files.size(), 2u);
  EXPECT_EQ(catalog.zones_file, "zones.tsv");

  const DemRaster decoded = read_bq(catalog.raster_path(0)).decode_all();
  EXPECT_TRUE(std::equal(decoded.cells().begin(), decoded.cells().end(),
                         a.cells().begin()));
  EXPECT_EQ(read_polygon_tsv(catalog.zones_path()).size(), zones.size());
}

TEST_F(CatalogTest, RunMatchesInMemoryReferenceBothModes) {
  const DemRaster a = generate_dem(
      64, 64, GeoTransform(0.0, 6.4, 0.1, 0.1), {.max_value = 99});
  const DemRaster b = generate_dem(
      64, 96, GeoTransform(6.4, 6.4, 0.1, 0.1), {.max_value = 99});
  const BqCompressedRaster ca = BqCompressedRaster::encode(a, 8);
  const BqCompressedRaster cb = BqCompressedRaster::encode(b, 8);
  const PolygonSet zones = test::random_polygon_set(
      9, GeoBox{0.5, 0.5, 15.5, 5.9}, 5, false);
  write_catalog(dir_, {{"west", &ca}, {"east", &cb}}, zones);
  const Catalog catalog = open_catalog(dir_);

  Device dev;
  HistogramSet expect(zones.size(), 100);
  expect.add(zonal_mbb_filter(a, zones, 100));
  expect.add(zonal_mbb_filter(b, zones, 100));

  for (const bool lazy : {true, false}) {
    const CatalogRunResult r = run_catalog(
        dev, catalog, {.tile_size = 8, .bins = 100}, lazy);
    EXPECT_EQ(r.per_polygon, expect) << "lazy=" << lazy;
    EXPECT_EQ(r.rasters_processed, 2u);
    EXPECT_GT(r.bytes_read, 0u);
  }
}

TEST_F(CatalogTest, MalformedManifestsThrow) {
  EXPECT_THROW(open_catalog(dir_ + "_missing"), IoError);

  std::filesystem::create_directories(dir_);
  auto write_manifest = [&](const char* body) {
    std::ofstream os(std::filesystem::path(dir_) / "catalog.txt");
    os << body;
  };
  write_manifest("wrong header\n");
  EXPECT_THROW(open_catalog(dir_), IoError);
  write_manifest("zhcatalog 1\nraster a.bq\n");  // no zones entry
  EXPECT_THROW(open_catalog(dir_), IoError);
  write_manifest("zhcatalog 1\nzones zones.tsv\n");  // no rasters
  EXPECT_THROW(open_catalog(dir_), IoError);
  write_manifest("zhcatalog 1\nzones zones.tsv\nraster a.bq\n");
  EXPECT_THROW(open_catalog(dir_), IoError);  // files do not exist
  write_manifest("zhcatalog 1\nbogus entry\n");
  EXPECT_THROW(open_catalog(dir_), IoError);
}

TEST_F(CatalogTest, RejectsPathEscapingNames) {
  const DemRaster a = test::random_raster(8, 8, 1, 9);
  const BqCompressedRaster ca = BqCompressedRaster::encode(a, 8);
  EXPECT_THROW(
      write_catalog(dir_, {{"../evil", &ca}}, PolygonSet{}),
      InvalidArgument);
  EXPECT_THROW(write_catalog(dir_, {}, PolygonSet{}), InvalidArgument);
}

}  // namespace
}  // namespace zh
