// Point-in-polygon properties (DESIGN.md invariant 7): ray-crossing vs
// winding number away from boundaries, multi-ring hole semantics, and
// bit-exact agreement between the object form and the Fig.-5 SoA form.
#include <gtest/gtest.h>

#include <random>

#include "geom/pip.hpp"
#include "geom/soa.hpp"
#include "test_util.hpp"

namespace zh {
namespace {

Polygon square_poly(double x0, double y0, double side) {
  return Polygon({{{x0, y0},
                   {x0 + side, y0},
                   {x0 + side, y0 + side},
                   {x0, y0 + side}}});
}

TEST(Pip, SquareBasics) {
  const Polygon sq = square_poly(1, 1, 2);
  EXPECT_TRUE(point_in_polygon(sq, {2.0, 2.0}));
  EXPECT_FALSE(point_in_polygon(sq, {0.5, 2.0}));
  EXPECT_FALSE(point_in_polygon(sq, {3.5, 2.0}));
  EXPECT_FALSE(point_in_polygon(sq, {2.0, 0.5}));
  EXPECT_FALSE(point_in_polygon(sq, {2.0, 3.5}));
}

TEST(Pip, HoleSubtractsUnderEvenOdd) {
  Polygon p = square_poly(0, 0, 10);
  p.add_ring({{3, 3}, {7, 3}, {7, 7}, {3, 7}});
  EXPECT_TRUE(point_in_polygon(p, {1, 1}));    // in outer, out of hole
  EXPECT_FALSE(point_in_polygon(p, {5, 5}));   // inside hole
  EXPECT_FALSE(point_in_polygon(p, {11, 5}));  // outside everything
}

TEST(Pip, DisjointPartsAdd) {
  Polygon p = square_poly(0, 0, 1);
  p.add_ring({{5, 5}, {6, 5}, {6, 6}, {5, 6}});
  EXPECT_TRUE(point_in_polygon(p, {0.5, 0.5}));
  EXPECT_TRUE(point_in_polygon(p, {5.5, 5.5}));
  EXPECT_FALSE(point_in_polygon(p, {3.0, 3.0}));
}

TEST(Pip, ConcavePolygon) {
  // A "U" shape: inside the notch is outside the polygon.
  const Polygon u({{{0, 0},
                    {6, 0},
                    {6, 5},
                    {4, 5},
                    {4, 2},
                    {2, 2},
                    {2, 5},
                    {0, 5}}});
  EXPECT_TRUE(point_in_polygon(u, {1, 1}));
  EXPECT_TRUE(point_in_polygon(u, {5, 4}));
  EXPECT_FALSE(point_in_polygon(u, {3, 4}));  // in the notch
  EXPECT_TRUE(point_in_polygon(u, {3, 1}));   // in the base
}

TEST(Pip, RayCrossingMatchesWindingNumberAwayFromBoundary) {
  std::mt19937 rng(123);
  std::uniform_real_distribution<double> coord(-3.0, 13.0);
  for (int trial = 0; trial < 50; ++trial) {
    const Polygon poly = test::random_star_polygon(
        rng, 5.0, 5.0, 4.0, 5 + trial % 20, /*with_hole=*/trial % 3 == 0);
    for (int k = 0; k < 200; ++k) {
      const GeoPoint p{coord(rng), coord(rng)};
      // Star polygons are simple, so parity and winding agree exactly
      // except on the boundary itself (measure zero for random points).
      EXPECT_EQ(point_in_polygon(poly, p), winding_number(poly, p) != 0)
          << "trial " << trial << " point (" << p.x << "," << p.y << ")";
    }
  }
}

TEST(Pip, SoaFormMatchesObjectFormBitExactly) {
  std::mt19937 rng(77);
  PolygonSet set;
  for (int i = 0; i < 20; ++i) {
    set.add(test::random_star_polygon(rng, 3.0 + i, 4.0, 2.5, 5 + i,
                                      /*with_hole=*/i % 2 == 1));
  }
  const PolygonSoA soa = PolygonSoA::build(set);
  std::uniform_real_distribution<double> coord(-1.0, 26.0);
  for (PolygonId pid = 0; pid < set.size(); ++pid) {
    for (int k = 0; k < 500; ++k) {
      const GeoPoint p{coord(rng), coord(rng)};
      ASSERT_EQ(point_in_polygon(set[pid], p),
                point_in_polygon_soa(soa, pid, p.x, p.y))
          << "pid " << pid << " point (" << p.x << "," << p.y << ")";
    }
  }
}

TEST(Pip, SoaHandlesMultiRingViaSentinels) {
  PolygonSet set;
  Polygon p = square_poly(1, 1, 8);
  p.add_ring({{3, 3}, {6, 3}, {6, 6}, {3, 6}});
  set.add(std::move(p));
  const PolygonSoA soa = PolygonSoA::build(set);
  EXPECT_TRUE(point_in_polygon_soa(soa, 0, 2.0, 2.0));
  EXPECT_FALSE(point_in_polygon_soa(soa, 0, 4.5, 4.5));  // hole
  EXPECT_FALSE(point_in_polygon_soa(soa, 0, 0.5, 0.5));
}

TEST(Pip, SoaTestedEdgesCountsRealEdgesOnly) {
  // soa_tested_edges must mirror the PiP loop's skip structure exactly:
  // per ring, the closing vertex contributes one real (closing) edge and
  // the (0,0) sentinel removes two iterations, so a k-vertex ring tests
  // k edges. This is the per-cell charge behind step4.pip_edge_tests.
  PolygonSet set;
  Polygon p = square_poly(1, 1, 2);                              // 4 edges
  p.add_ring({{1.5, 1.5}, {2.5, 1.5}, {2.5, 2.5}, {1.5, 2.5}});  // 4 more
  set.add(std::move(p));
  set.add(Polygon({{{5, 5}, {6, 5}, {5.5, 6}}}));                // 3 edges
  const PolygonSoA soa = PolygonSoA::build(set);
  const auto [f0, t0] = soa.vertex_range(0);
  const auto [f1, t1] = soa.vertex_range(1);
  EXPECT_EQ(soa_tested_edges(soa.x_v().data(), soa.y_v().data(), f0, t0),
            8u);
  EXPECT_EQ(soa_tested_edges(soa.x_v().data(), soa.y_v().data(), f1, t1),
            3u);
}

TEST(Pip, HalfOpenRuleCountsSharedVerticesOnce) {
  // A diamond whose top/bottom vertices sit exactly on the test row:
  // the half-open vertical rule must not double-count the apex edges.
  const Polygon diamond({{{5, 0}, {10, 5}, {5, 10}, {0, 5}}});
  EXPECT_TRUE(point_in_polygon(diamond, {5.0, 5.0}));
  // Horizontal ray through the apex y: apex itself is not inside-left.
  EXPECT_FALSE(point_in_polygon(diamond, {-1.0, 5.0}));
  EXPECT_FALSE(point_in_polygon(diamond, {11.0, 5.0}));
}

TEST(Pip, GridOfCellCentersAgreesWithWinding) {
  // Exhaustive grid scan -- the exact access pattern Step 4 performs.
  std::mt19937 rng(9);
  const Polygon poly =
      test::random_star_polygon(rng, 5.0, 5.0, 4.0, 17, true);
  int inside = 0;
  for (int r = 0; r < 100; ++r) {
    for (int c = 0; c < 100; ++c) {
      const GeoPoint p{c * 0.1 + 0.05, r * 0.1 + 0.05};
      const bool a = point_in_polygon(poly, p);
      ASSERT_EQ(a, winding_number(poly, p) != 0);
      inside += a;
    }
  }
  // Sanity: the polygon covers a nontrivial chunk of the 10x10 window.
  EXPECT_GT(inside, 100);
  EXPECT_LT(inside, 9000);
}

}  // namespace
}  // namespace zh
