// TileCache invariants I1-I4 (see tile_cache.hpp). The fill callbacks
// here return synthetic histograms stamped with the key so sharing and
// aliasing are observable; the atomically counted fills prove the
// single-fill guarantee under real thread contention.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "core/tile_cache.hpp"
#include "grid/geotransform.hpp"
#include "test_util.hpp"

namespace zh {
namespace {

TileHistKey key_for(TileId tile, std::uint32_t band = 0,
                    std::uint64_t raster_fp = 0x1111,
                    std::uint64_t binning_fp = 0x2222) {
  return TileHistKey{.raster_fp = raster_fp,
                     .band = band,
                     .tile = tile,
                     .binning_fp = binning_fp};
}

/// A recognizable histogram: bins counts, each equal to tile + 1.
std::vector<BinCount> stamped_hist(TileId tile, std::size_t bins = 64) {
  return std::vector<BinCount>(bins, tile + 1);
}

TEST(TileCache, MissThenHitSharesOnePointer) {
  TileCache cache;
  std::atomic<int> fills{0};
  const TileHistKey k = key_for(7);
  const auto fill = [&] {
    ++fills;
    return stamped_hist(7);
  };
  const TileHistPtr a = cache.get_or_fill(k, fill);
  const TileHistPtr b = cache.get_or_fill(k, fill);
  EXPECT_EQ(fills.load(), 1);
  EXPECT_EQ(a.get(), b.get());
  ASSERT_NE(a, nullptr);
  EXPECT_EQ((*a)[0], 8u);
  const TileCacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.fills, 1u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_GT(s.bytes, 0u);
}

TEST(TileCache, NullFillIsRejected) {
  TileCache cache;
  EXPECT_THROW((void)cache.get_or_fill(key_for(0), nullptr), InvalidArgument);
}

TEST(TileCache, DistinctKeyCoordinatesNeverAlias) {
  TileCache cache;
  std::atomic<int> fills{0};
  const auto fill_tile = [&](TileId t) {
    return cache.get_or_fill(key_for(t), [&, t] {
      ++fills;
      return stamped_hist(t);
    });
  };
  const TileHistPtr base = fill_tile(1);
  // Same tile, different band / binning / raster: all separate entries.
  const TileHistPtr other_band =
      cache.get_or_fill(key_for(1, 1), [&] { ++fills; return stamped_hist(99); });
  const TileHistPtr other_binning = cache.get_or_fill(
      key_for(1, 0, 0x1111, 0x9999), [&] { ++fills; return stamped_hist(98); });
  const TileHistPtr other_raster = cache.get_or_fill(
      key_for(1, 0, 0xABCD), [&] { ++fills; return stamped_hist(97); });
  EXPECT_EQ(fills.load(), 4);
  EXPECT_NE(base.get(), other_band.get());
  EXPECT_NE(base.get(), other_binning.get());
  EXPECT_NE(base.get(), other_raster.get());
  EXPECT_EQ((*base)[0], 2u);
  EXPECT_EQ((*other_band)[0], 100u);
}

// I1: at most one fill per key runs at any time; concurrent callers for
// the same key block and share the one published histogram.
TEST(TileCache, ConcurrentSameKeyCallersShareOneFill) {
  TileCache cache;
  const TileHistKey k = key_for(3);
  std::atomic<int> fills{0};
  std::atomic<int> in_fill{0};
  constexpr int kThreads = 8;
  std::vector<TileHistPtr> got(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      got[t] = cache.get_or_fill(k, [&] {
        ++fills;
        EXPECT_EQ(in_fill.fetch_add(1), 0) << "two fills ran concurrently";
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        in_fill.fetch_sub(1);
        return stamped_hist(3);
      });
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(fills.load(), 1);
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(got[t].get(), got[0].get()) << "thread " << t;
  }
  const TileCacheStats s = cache.stats();
  // I3: every call is exactly one hit or one miss.
  EXPECT_EQ(s.hits + s.misses, static_cast<std::uint64_t>(kThreads));
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.fills, 1u);
}

// I2: resident bytes never exceed the budget once fills publish.
TEST(TileCache, EvictionKeepsBytesUnderBudget) {
  // Measure the exact per-entry cost first, then budget for ~3 entries.
  std::uint64_t per_entry = 0;
  {
    TileCache probe(TileCacheConfig{.budget_bytes = 1 << 20, .shards = 1});
    (void)probe.get_or_fill(key_for(0), [] { return stamped_hist(0, 1024); });
    per_entry = probe.bytes();
    ASSERT_GT(per_entry, 1024u * sizeof(BinCount) - 1);
  }
  TileCache cache(TileCacheConfig{
      .budget_bytes = static_cast<std::size_t>(3 * per_entry + per_entry / 2),
      .shards = 1});
  for (TileId t = 0; t < 32; ++t) {
    (void)cache.get_or_fill(key_for(t), [t] { return stamped_hist(t, 1024); });
    EXPECT_LE(cache.bytes(), cache.budget_bytes()) << "after tile " << t;
  }
  const TileCacheStats s = cache.stats();
  EXPECT_EQ(s.fills, 32u);
  EXPECT_GE(s.evictions, 29u);  // at most 3 resident at the end
  EXPECT_LE(s.bytes, cache.budget_bytes());
}

TEST(TileCache, EvictionIsLeastRecentlyUsed) {
  std::uint64_t per_entry = 0;
  {
    TileCache probe(TileCacheConfig{.budget_bytes = 1 << 20, .shards = 1});
    (void)probe.get_or_fill(key_for(0), [] { return stamped_hist(0, 512); });
    per_entry = probe.bytes();
  }
  // Room for exactly two entries.
  TileCache cache(TileCacheConfig{
      .budget_bytes = static_cast<std::size_t>(2 * per_entry + per_entry / 2),
      .shards = 1});
  std::atomic<int> fills{0};
  const auto get = [&](TileId t) {
    return cache.get_or_fill(key_for(t), [&, t] {
      ++fills;
      return stamped_hist(t, 512);
    });
  };
  (void)get(1);  // LRU: [1]
  (void)get(2);  // LRU: [2, 1]
  (void)get(1);  // touch -> LRU: [1, 2]
  (void)get(3);  // evicts 2 -> LRU: [3, 1]
  EXPECT_EQ(fills.load(), 3);
  (void)get(1);  // still resident: hit, no new fill
  EXPECT_EQ(fills.load(), 3);
  (void)get(2);  // was evicted: refills
  EXPECT_EQ(fills.load(), 4);
}

// I4: an evicted histogram stays alive through the handed-out pointer.
TEST(TileCache, EvictedHistogramOutlivesEviction) {
  std::uint64_t per_entry = 0;
  {
    TileCache probe(TileCacheConfig{.budget_bytes = 1 << 20, .shards = 1});
    (void)probe.get_or_fill(key_for(0), [] { return stamped_hist(0, 256); });
    per_entry = probe.bytes();
  }
  TileCache cache(TileCacheConfig{
      .budget_bytes = static_cast<std::size_t>(per_entry + per_entry / 2),
      .shards = 1});
  const TileHistPtr held =
      cache.get_or_fill(key_for(5), [] { return stamped_hist(5, 256); });
  for (TileId t = 10; t < 14; ++t) {
    (void)cache.get_or_fill(key_for(t), [t] { return stamped_hist(t, 256); });
  }
  EXPECT_GE(cache.stats().evictions, 3u);
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(held->size(), 256u);
  EXPECT_EQ((*held)[100], 6u);  // payload intact after eviction
}

TEST(TileCache, FailedFillPropagatesAndNextCallerRetries) {
  TileCache cache;
  const TileHistKey k = key_for(9);
  EXPECT_THROW((void)cache.get_or_fill(
                   k, []() -> std::vector<BinCount> {
                     throw std::runtime_error("fill boom");
                   }),
               std::runtime_error);
  // The claim was aborted: the next caller fills successfully.
  std::atomic<int> fills{0};
  const TileHistPtr p = cache.get_or_fill(k, [&] {
    ++fills;
    return stamped_hist(9);
  });
  EXPECT_EQ(fills.load(), 1);
  ASSERT_NE(p, nullptr);
  const TileCacheStats s = cache.stats();
  EXPECT_EQ(s.misses, 2u);  // the failed attempt and the retry
  EXPECT_EQ(s.fills, 1u);   // only the retry completed (I3: fills <= misses)
}

TEST(TileCache, WaiterTakesOverAfterFillerFails) {
  TileCache cache;
  const TileHistKey k = key_for(11);
  std::atomic<bool> filler_inside{false};
  std::atomic<int> successful_fills{0};

  std::thread filler([&] {
    try {
      (void)cache.get_or_fill(k, [&]() -> std::vector<BinCount> {
        filler_inside = true;
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        throw std::runtime_error("filler dies");
      });
      ADD_FAILURE() << "filler exception was swallowed";
    } catch (const std::runtime_error&) {
    }
  });
  // Enter get_or_fill while the doomed fill is in flight so this call
  // blocks on the in-flight guard, then takes over after the abort.
  while (!filler_inside.load()) std::this_thread::yield();
  const TileHistPtr p = cache.get_or_fill(k, [&] {
    ++successful_fills;
    return stamped_hist(11);
  });
  filler.join();
  EXPECT_EQ(successful_fills.load(), 1);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ((*p)[0], 12u);
}

TEST(TileCache, ClearDropsEverythingAndZeroesBytes) {
  TileCache cache;
  std::atomic<int> fills{0};
  for (TileId t = 0; t < 8; ++t) {
    (void)cache.get_or_fill(key_for(t), [&, t] {
      ++fills;
      return stamped_hist(t);
    });
  }
  EXPECT_GT(cache.bytes(), 0u);
  cache.clear();
  EXPECT_EQ(cache.bytes(), 0u);
  // Every key refills after a clear.
  for (TileId t = 0; t < 8; ++t) {
    (void)cache.get_or_fill(key_for(t), [&, t] {
      ++fills;
      return stamped_hist(t);
    });
  }
  EXPECT_EQ(fills.load(), 16);
}

TEST(TileCache, ShardCountRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TileCache(TileCacheConfig{.shards = 1}).shard_count(), 1u);
  EXPECT_EQ(TileCache(TileCacheConfig{.shards = 5}).shard_count(), 8u);
  EXPECT_EQ(TileCache(TileCacheConfig{.shards = 0}).shard_count(), 1u);
}

TEST(TileCacheFingerprint, RasterFingerprintTracksContent) {
  const GeoTransform gt(0.0, 4.0, 0.5, 0.5);
  DemRaster a = test::random_raster(8, 8, 0, 100, gt);
  const DemRaster a_copy = a;
  const std::uint64_t fp_a = fingerprint_raster(a);
  EXPECT_EQ(fingerprint_raster(a_copy), fp_a);

  DemRaster cell_changed = a;
  cell_changed.at(3, 3) = cell_changed.at(3, 3) + 1;
  EXPECT_NE(fingerprint_raster(cell_changed), fp_a);

  DemRaster nodata_changed = a;
  nodata_changed.set_nodata(CellValue{4242});
  EXPECT_NE(fingerprint_raster(nodata_changed), fp_a);
}

TEST(TileCacheFingerprint, BinningFingerprintSeparatesSchemes) {
  const std::uint64_t base = fingerprint_binning(360, 5000);
  EXPECT_EQ(fingerprint_binning(360, 5000), base);
  EXPECT_NE(fingerprint_binning(360, 4999), base);
  EXPECT_NE(fingerprint_binning(256, 5000), base);
}

}  // namespace
}  // namespace zh
