// Stress and sweep tests: communicator message storms, thread-pool
// churn, randomized tiling sweeps, and the points CSV round trip.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <numeric>
#include <random>
#include <set>

#include "cluster/comm.hpp"
#include "device/thread_pool.hpp"
#include "grid/tiling.hpp"
#include "io/vector_io.hpp"

namespace zh {
namespace {

TEST(CommStress, ManyInterleavedTags) {
  // Each rank sends 50 messages with distinct tags to every other rank;
  // receivers pull them in reverse tag order, exercising queue search.
  constexpr int kMessages = 50;
  run_cluster(4, [](Communicator& comm) {
    for (RankId dst = 0; dst < comm.size(); ++dst) {
      if (dst == comm.rank()) continue;
      for (int tag = 0; tag < kMessages; ++tag) {
        const std::vector<std::uint32_t> payload = {
            comm.rank() * 1000u + static_cast<std::uint32_t>(tag)};
        comm.send<std::uint32_t>(dst, tag, payload);
      }
    }
    for (RankId src = 0; src < comm.size(); ++src) {
      if (src == comm.rank()) continue;
      for (int tag = kMessages - 1; tag >= 0; --tag) {
        const auto got = comm.recv<std::uint32_t>(src, tag);
        ASSERT_EQ(got.size(), 1u);
        ASSERT_EQ(got[0], src * 1000u + static_cast<std::uint32_t>(tag));
      }
    }
  });
}

TEST(CommStress, RingPipeline) {
  // Token circles the ring 20 times, accumulating each rank's id.
  run_cluster(5, [](Communicator& comm) {
    const RankId next = (comm.rank() + 1) % 5;
    const RankId prev = (comm.rank() + 4) % 5;
    std::uint64_t token = 0;
    for (int lap = 0; lap < 20; ++lap) {
      if (comm.rank() == 0) {
        const std::vector<std::uint64_t> out = {token};
        comm.send<std::uint64_t>(next, lap, out);
        token = comm.recv<std::uint64_t>(prev, lap)[0];
      } else {
        token = comm.recv<std::uint64_t>(prev, lap)[0];
        token += comm.rank();
        const std::vector<std::uint64_t> out = {token};
        comm.send<std::uint64_t>(next, lap, out);
      }
    }
    if (comm.rank() == 0) {
      EXPECT_EQ(token, 20ull * (1 + 2 + 3 + 4));
    }
  });
}

TEST(CommStress, LargePayload) {
  run_cluster(2, [](Communicator& comm) {
    const std::size_t n = 1 << 20;  // 4 MB of uint32
    if (comm.rank() == 0) {
      std::vector<std::uint32_t> big(n);
      std::iota(big.begin(), big.end(), 0u);
      comm.send<std::uint32_t>(1, 0, big);
    } else {
      const auto got = comm.recv<std::uint32_t>(0, 0);
      ASSERT_EQ(got.size(), n);
      EXPECT_EQ(got[12345], 12345u);
      EXPECT_EQ(got[n - 1], n - 1);
    }
  });
}

TEST(CommStress, RepeatedBarriers) {
  std::atomic<int> counter{0};
  run_cluster(3, [&](Communicator& comm) {
    for (int i = 0; i < 100; ++i) {
      if (comm.rank() == 0) counter.fetch_add(1);
      comm.barrier();
      ASSERT_EQ(counter.load(), i + 1);
      comm.barrier();
    }
  });
}

TEST(ThreadPoolStress, ManySmallParallelFors) {
  std::atomic<std::uint64_t> total{0};
  for (int round = 0; round < 200; ++round) {
    ThreadPool::global().parallel_for(
        17, [&](std::size_t b, std::size_t e) {
          total.fetch_add(e - b, std::memory_order_relaxed);
        });
  }
  EXPECT_EQ(total.load(), 200ull * 17);
}

TEST(ThreadPoolStress, DeepNesting) {
  std::atomic<std::uint64_t> total{0};
  ThreadPool::global().parallel_for(4, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      ThreadPool::global().parallel_for(
          4, [&](std::size_t b2, std::size_t e2) {
            for (std::size_t j = b2; j < e2; ++j) {
              ThreadPool::global().parallel_for(
                  8, [&](std::size_t b3, std::size_t e3) {
                    total.fetch_add(e3 - b3, std::memory_order_relaxed);
                  });
            }
          });
    }
  });
  EXPECT_EQ(total.load(), 4ull * 4 * 8);
}

TEST(TilingSweep, RandomDimsPartitionProperty) {
  std::mt19937 rng(42);
  for (int trial = 0; trial < 40; ++trial) {
    const std::int64_t rows = 1 + static_cast<std::int64_t>(rng() % 300);
    const std::int64_t cols = 1 + static_cast<std::int64_t>(rng() % 300);
    const std::int64_t tile = 1 + static_cast<std::int64_t>(rng() % 64);
    const TilingScheme t(rows, cols, tile);

    std::int64_t covered = 0;
    for (TileId id = 0; id < t.tile_count(); ++id) {
      const CellWindow w = t.tile_window(id);
      ASSERT_GT(w.rows, 0);
      ASSERT_GT(w.cols, 0);
      ASSERT_LE(w.rows, tile);
      ASSERT_LE(w.cols, tile);
      ASSERT_LE(w.row0 + w.rows, rows);
      ASSERT_LE(w.col0 + w.cols, cols);
      covered += w.cell_count();
      // id round-trips through (row, col).
      ASSERT_EQ(t.tile_id(t.tile_row(id), t.tile_col(id)), id);
    }
    ASSERT_EQ(covered, rows * cols)
        << rows << "x" << cols << " tile " << tile;
  }
}

TEST(TilingSweep, TilesCoveringRandomBoxes) {
  std::mt19937 rng(7);
  const GeoTransform tr(-50.0, 30.0, 0.05, 0.05);
  const TilingScheme t(200, 160, 16);
  std::uniform_real_distribution<double> ux(-55.0, -38.0);
  std::uniform_real_distribution<double> uy(15.0, 35.0);
  for (int trial = 0; trial < 60; ++trial) {
    double x0 = ux(rng);
    double x1 = ux(rng);
    double y0 = uy(rng);
    double y1 = uy(rng);
    if (x0 > x1) std::swap(x0, x1);
    if (y0 > y1) std::swap(y0, y1);
    const GeoBox box{x0, y0, x1, y1};
    const auto got = t.tiles_covering(box, tr);
    std::set<TileId> got_set(got.begin(), got.end());
    ASSERT_EQ(got_set.size(), got.size()) << "duplicates returned";
    for (TileId id = 0; id < t.tile_count(); ++id) {
      ASSERT_EQ(got_set.count(id) == 1,
                t.tile_box(id, tr).intersects(box))
          << "trial " << trial << " tile " << id;
    }
  }
}

TEST(PointsCsv, RoundTripAndMalformed) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("zh_ptscsv_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "pts.csv").string();

  PointSet pts;
  pts.add(1.25, -3.5, 7.0);
  pts.add(-0.125, 44.0, 1.5);
  write_points_csv(path, pts);
  const PointSet back = read_points_csv(path);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back.x, pts.x);
  EXPECT_EQ(back.y, pts.y);
  EXPECT_EQ(back.weight, pts.weight);

  {
    std::ofstream os(path);
    os << "x,y\n1.0,2.0\n3.0,4.0\n";
  }
  const PointSet unweighted = read_points_csv(path);
  ASSERT_EQ(unweighted.size(), 2u);
  EXPECT_DOUBLE_EQ(unweighted.weight[0], 1.0);

  {
    std::ofstream os(path);
    os << "lon,lat\n1,2\n";
  }
  EXPECT_THROW(read_points_csv(path), IoError);
  {
    std::ofstream os(path);
    os << "x,y,weight\n1.0;2.0;3.0\n";
  }
  EXPECT_THROW(read_points_csv(path), IoError);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace zh
