// Step 1 properties (DESIGN.md invariant 2): per-tile histogram bin sums
// equal tile cell counts; counting strategies agree; nodata and clamping
// behave as documented.
#include <gtest/gtest.h>

#include "core/step1_tile_hist.hpp"
#include "test_util.hpp"

namespace zh {
namespace {

class Step1Sweep : public ::testing::TestWithParam<std::int64_t> {};

INSTANTIATE_TEST_SUITE_P(TileSizes, Step1Sweep,
                         ::testing::Values(1, 7, 16, 60, 128));

TEST_P(Step1Sweep, BinSumsEqualTileCellCounts) {
  const std::int64_t tile = GetParam();
  Device dev;
  const DemRaster r = test::random_raster(130, 97, 21, 999);
  const TilingScheme tiling(r.rows(), r.cols(), tile);
  const HistogramSet h = tile_histograms(dev, r, tiling, 1000);
  ASSERT_EQ(h.groups(), tiling.tile_count());
  BinCount64 total = 0;
  for (TileId id = 0; id < tiling.tile_count(); ++id) {
    const CellWindow w = tiling.tile_window(id);
    ASSERT_EQ(h.group_total(id),
              static_cast<BinCount64>(w.cell_count()))
        << "tile " << id;
    total += h.group_total(id);
  }
  EXPECT_EQ(total, static_cast<BinCount64>(r.cell_count()));
}

TEST_P(Step1Sweep, HistogramCountsMatchDirectTally) {
  const std::int64_t tile = GetParam();
  Device dev;
  const DemRaster r = test::random_raster(64, 64, 5, 49);
  const TilingScheme tiling(r.rows(), r.cols(), tile);
  const HistogramSet h = tile_histograms(dev, r, tiling, 50);
  for (TileId id = 0; id < tiling.tile_count(); ++id) {
    const CellWindow w = tiling.tile_window(id);
    std::vector<BinCount> expect(50, 0);
    for (std::int64_t rr = w.row0; rr < w.row0 + w.rows; ++rr) {
      for (std::int64_t cc = w.col0; cc < w.col0 + w.cols; ++cc) {
        ++expect[r.at(rr, cc)];
      }
    }
    const auto got = h.of(id);
    for (BinIndex b = 0; b < 50; ++b) {
      ASSERT_EQ(got[b], expect[b]) << "tile " << id << " bin " << b;
    }
  }
}

TEST(Step1, AtomicAndPrivatizedModesAgree) {
  Device dev;
  const DemRaster r = test::random_raster(100, 100, 77, 255);
  const TilingScheme tiling(r.rows(), r.cols(), 32);
  const HistogramSet atomic =
      tile_histograms(dev, r, tiling, 256, CountMode::kAtomic);
  const HistogramSet priv =
      tile_histograms(dev, r, tiling, 256, CountMode::kPrivatized);
  EXPECT_EQ(atomic, priv);
}

TEST(Step1, NodataCellsAreSkipped) {
  Device dev;
  DemRaster r(10, 10);
  for (CellValue& v : r.cells()) v = 5;
  r.at(3, 3) = 1234;
  r.set_nodata(CellValue{1234});
  const TilingScheme tiling(10, 10, 10);
  const HistogramSet h = tile_histograms(dev, r, tiling, 10);
  EXPECT_EQ(h.group_total(0), 99u);
  EXPECT_EQ(h.of(0)[5], 99u);
}

TEST(Step1, OutOfRangeValuesClampToTopBin) {
  Device dev;
  DemRaster r(4, 4);
  for (CellValue& v : r.cells()) v = 9000;
  const TilingScheme tiling(4, 4, 4);
  const HistogramSet h = tile_histograms(dev, r, tiling, 100);
  EXPECT_EQ(h.of(0)[99], 16u);
}

TEST(Step1, MismatchedTilingThrows) {
  Device dev;
  const DemRaster r = test::random_raster(10, 10, 1, 9);
  const TilingScheme wrong(20, 10, 5);
  EXPECT_THROW(tile_histograms(dev, r, wrong, 10), InvalidArgument);
}

TEST(Step1, EmptyRaster) {
  Device dev;
  const DemRaster r(0, 0);
  const TilingScheme tiling(0, 0, 16);
  const HistogramSet h = tile_histograms(dev, r, tiling, 10);
  EXPECT_EQ(h.groups(), 0u);
}

}  // namespace
}  // namespace zh
