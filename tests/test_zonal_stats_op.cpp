#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "core/zonal_stats_op.hpp"
#include "test_util.hpp"

namespace zh {
namespace {

void expect_stats_eq(const ZonalStats& a, const ZonalStats& b,
                     const char* what) {
  EXPECT_EQ(a.count, b.count) << what;
  EXPECT_EQ(a.min, b.min) << what;
  EXPECT_EQ(a.max, b.max) << what;
  EXPECT_NEAR(a.mean, b.mean, 1e-9 * (std::abs(b.mean) + 1.0)) << what;
  EXPECT_NEAR(a.stddev, b.stddev, 1e-6 * (b.stddev + 1.0)) << what;
}

TEST(StatsAccumulator, AddAndMerge) {
  StatsAccumulator a;
  a.add(2);
  a.add(2);
  a.add(2);
  StatsAccumulator b;
  b.add(5);
  a.merge(b);
  const ZonalStats s = a.finalize();
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.min, 2u);
  EXPECT_EQ(s.max, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 2.75);
  EXPECT_NEAR(s.stddev * s.stddev, 1.6875, 1e-12);
}

TEST(StatsAccumulator, EmptyFinalize) {
  const ZonalStats s = StatsAccumulator{}.finalize();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

class ZonalStatsOpSweep : public ::testing::TestWithParam<std::int64_t> {};

INSTANTIATE_TEST_SUITE_P(TileSizes, ZonalStatsOpSweep,
                         ::testing::Values(5, 12, 32, 100));

TEST_P(ZonalStatsOpSweep, MatchesReferenceAndHistogramDerivation) {
  const std::int64_t tile = GetParam();
  Device dev;
  const DemRaster raster = test::random_raster(
      90, 110, 7, 499, GeoTransform(0.0, 9.0, 0.1, 0.1));
  const PolygonSet polys = test::random_polygon_set(
      11, GeoBox{0.5, 0.5, 10.5, 8.5}, 9, /*holes=*/true);

  const std::vector<ZonalStats> direct =
      zonal_statistics(dev, raster, polys, tile);
  const std::vector<ZonalStats> reference =
      zonal_statistics_reference(raster, polys);

  // Histogram route: exact counts, same moments up to fp accumulation.
  const ZonalPipeline pipe(dev, {.tile_size = tile, .bins = 500});
  const ZonalResult hist = pipe.run(raster, polys);

  ASSERT_EQ(direct.size(), polys.size());
  for (PolygonId id = 0; id < polys.size(); ++id) {
    expect_stats_eq(direct[id], reference[id], "direct vs reference");
    const ZonalStats from_hist =
        stats_from_histogram(hist.per_polygon.of(id));
    expect_stats_eq(direct[id], from_hist, "direct vs histogram");
  }
}

TEST(ZonalStatsOp, NodataSkipped) {
  Device dev;
  DemRaster raster(6, 6, GeoTransform(0.0, 6.0, 1.0, 1.0));
  for (CellValue& v : raster.cells()) v = 7;
  raster.at(1, 1) = 999;
  raster.set_nodata(CellValue{999});
  PolygonSet polys;
  polys.add(Polygon({{{0.1, 0.1}, {5.9, 0.1}, {5.9, 5.9}, {0.1, 5.9}}}));
  const auto stats = zonal_statistics(dev, raster, polys, 3);
  EXPECT_EQ(stats[0].count, 35u);
  EXPECT_EQ(stats[0].min, 7u);
  EXPECT_EQ(stats[0].max, 7u);
}

TEST(ZonalStatsOp, ZoneOutsideRasterIsEmpty) {
  Device dev;
  const DemRaster raster = test::random_raster(20, 20, 1, 9);
  PolygonSet polys;
  polys.add(Polygon({{{100, 100}, {101, 100}, {101, 101}}}));
  const auto stats = zonal_statistics(dev, raster, polys, 10);
  EXPECT_EQ(stats[0].count, 0u);
}

TEST(ZonalStatsOp, RejectsBadTileSize) {
  Device dev;
  const DemRaster raster = test::random_raster(10, 10, 1, 9);
  EXPECT_THROW(zonal_statistics(dev, raster, PolygonSet{}, 0),
               InvalidArgument);
}

}  // namespace
}  // namespace zh
