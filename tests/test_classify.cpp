// Tile-classification soundness (DESIGN.md invariant 3): an inside tile
// has every cell center inside the polygon; an outside tile has none.
#include <gtest/gtest.h>

#include <random>

#include "geom/classify.hpp"
#include "geom/pip.hpp"
#include "test_util.hpp"

namespace zh {
namespace {

TEST(SegmentBox, EndpointInsideCounts) {
  const GeoBox box{0, 0, 10, 10};
  EXPECT_TRUE(segment_intersects_box({5, 5}, {20, 20}, box));
  EXPECT_TRUE(segment_intersects_box({20, 20}, {5, 5}, box));
  EXPECT_TRUE(segment_intersects_box({1, 1}, {2, 2}, box));  // fully inside
}

TEST(SegmentBox, CrossingWithBothEndpointsOutside) {
  const GeoBox box{0, 0, 10, 10};
  EXPECT_TRUE(segment_intersects_box({-5, 5}, {15, 5}, box));
  EXPECT_TRUE(segment_intersects_box({5, -5}, {5, 15}, box));
  EXPECT_TRUE(segment_intersects_box({-1, -1}, {11, 11}, box));  // diagonal
}

TEST(SegmentBox, MissesAreRejected) {
  const GeoBox box{0, 0, 10, 10};
  EXPECT_FALSE(segment_intersects_box({-5, 12}, {15, 12}, box));
  EXPECT_FALSE(segment_intersects_box({12, -5}, {12, 15}, box));
  // Diagonal passing near the corner but outside.
  EXPECT_FALSE(segment_intersects_box({10.5, -1}, {21, 9.5}, box));
}

TEST(SegmentBox, TouchingEdgeCounts) {
  const GeoBox box{0, 0, 10, 10};
  // Collinear with the right edge.
  EXPECT_TRUE(segment_intersects_box({10, 2}, {10, 8}, box));
  // Touches only the corner point.
  EXPECT_TRUE(segment_intersects_box({10, 10}, {20, 10}, box));
}

TEST(SegmentBox, DegenerateSegment) {
  const GeoBox box{0, 0, 10, 10};
  EXPECT_TRUE(segment_intersects_box({5, 5}, {5, 5}, box));
  EXPECT_FALSE(segment_intersects_box({15, 5}, {15, 5}, box));
}

TEST(Classify, SquareCases) {
  const Polygon big({{{0, 0.5}, {100, 0.5}, {100, 100}, {0.5, 100}}});
  EXPECT_EQ(classify_box(big, GeoBox{40, 40, 60, 60}),
            TileRelation::kInside);
  EXPECT_EQ(classify_box(big, GeoBox{-50, -50, -10, -10}),
            TileRelation::kOutside);
  EXPECT_EQ(classify_box(big, GeoBox{90, 90, 110, 110}),
            TileRelation::kIntersect);
}

TEST(Classify, PolygonEntirelyInsideBoxIsIntersect) {
  // From the tile's perspective a polygon inside the tile means the tile
  // crosses the boundary -> per-cell tests required.
  const Polygon small({{{4, 4}, {6, 4}, {6, 6}, {4, 6}}});
  EXPECT_EQ(classify_box(small, GeoBox{0, 0, 10, 10}),
            TileRelation::kIntersect);
}

TEST(Classify, BoxInsideHoleIsOutside) {
  Polygon p({{{0.5, 0.5}, {20, 0.5}, {20, 20}, {0.5, 20}}});
  p.add_ring({{5, 5}, {15, 5}, {15, 15}, {5, 15}});
  EXPECT_EQ(classify_box(p, GeoBox{8, 8, 12, 12}), TileRelation::kOutside);
  EXPECT_EQ(classify_box(p, GeoBox{1, 1, 3, 3}), TileRelation::kInside);
  EXPECT_EQ(classify_box(p, GeoBox{4, 4, 6, 6}), TileRelation::kIntersect);
}

TEST(Classify, SoundnessPropertyOnRandomPolygons) {
  std::mt19937 rng(31);
  std::uniform_real_distribution<double> coord(0.0, 10.0);
  int inside_seen = 0;
  int outside_seen = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const Polygon poly = test::random_star_polygon(
        rng, 5.0, 5.0, 4.5, 6 + trial % 15, trial % 4 == 0);
    const GeoBox mbr = poly.mbr();
    for (int k = 0; k < 60; ++k) {
      const double x0 = coord(rng);
      const double y0 = coord(rng);
      const GeoBox box{x0, y0, x0 + 0.7, y0 + 0.7};
      const TileRelation rel = classify_box(poly, mbr, box);
      // Sample a 4x4 grid of interior points of the box.
      for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
          const GeoPoint p{x0 + (i + 0.5) * 0.7 / 4,
                           y0 + (j + 0.5) * 0.7 / 4};
          const bool in = point_in_polygon(poly, p);
          if (rel == TileRelation::kInside) {
            ASSERT_TRUE(in) << "inside tile with outside cell";
          } else if (rel == TileRelation::kOutside) {
            ASSERT_FALSE(in) << "outside tile with inside cell";
          }
        }
      }
      inside_seen += rel == TileRelation::kInside;
      outside_seen += rel == TileRelation::kOutside;
    }
  }
  // The property must have been exercised on both decisive classes.
  EXPECT_GT(inside_seen, 0);
  EXPECT_GT(outside_seen, 0);
}

TEST(Classify, MbrPrefilterShortCircuits) {
  const Polygon p({{{0, 0.5}, {1, 0.5}, {1, 1}, {0.5, 1}}});
  // Box far away: outside purely from the MBR check.
  EXPECT_EQ(classify_box(p, GeoBox{100, 100, 101, 101}),
            TileRelation::kOutside);
}

}  // namespace
}  // namespace zh
