// zh-lint's own test suite: drives the analyzer in-process over the
// fixture mini-trees in tests/lint_fixtures/. The `violations` tree has
// one deliberately-broken file per rule and the test pins the exact
// (rule, file, line) triples; the `clean` tree packs near-misses for
// every rule (widened index math, RAII locks, exhaustive switches,
// consumed Status values, reasoned suppressions) and must stay silent.
// check.sh's lint stage separately asserts the real tree is clean.
#include "lint.hpp"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace {

using zh::lint::Finding;
using zh::lint::LintResult;

std::string fixtures(const char* tree) {
  return std::string(ZH_LINT_FIXTURES) + "/" + tree;
}

/// Compact "file:line:rule" form for exact-set comparison.
std::vector<std::string> triples(const LintResult& r) {
  std::vector<std::string> out;
  out.reserve(r.findings.size());
  for (const Finding& f : r.findings) {
    out.push_back(f.file + ":" + std::to_string(f.line) + ":" + f.rule);
  }
  return out;
}

TEST(ZhLint, ViolationTreeReportsExactFindings) {
  const LintResult r = zh::lint::run_lint(fixtures("violations"));
  const std::vector<std::string> expected = {
      "src/cluster/discard.cpp:4:discarded-status",
      "src/cluster/discard.cpp:5:discarded-status",
      "src/cluster/discard.cpp:6:discarded-status",
      "src/common/upward.hpp:2:layering",
      "src/core/bad_suppressions.cpp:4:suppression-audit",
      "src/core/bad_suppressions.cpp:6:suppression-audit",
      "src/core/bad_suppressions.cpp:8:suppression-audit",
      "src/core/bad_suppressions.cpp:10:suppression-audit",
      "src/core/escape.cpp:4:nolint-audit",
      "src/core/escape.cpp:7:nolint-audit",
      "src/core/leak.cpp:4:naked-new",
      "src/core/leak.cpp:5:naked-new",
      "src/core/manual_lock.cpp:4:raw-mutex-lock",
      "src/core/manual_lock.cpp:5:raw-mutex-lock",
      "src/core/narrow.cpp:4:index-width",
      "src/core/narrow.cpp:7:index-width",
      "src/core/noisy.cpp:4:stdio-in-lib",
      "src/core/noisy.cpp:5:stdio-in-lib",
      "src/core/partial_switch.cpp:5:switch-enum",
      "src/core/unguarded.hpp:1:pragma-once",
      "src/geom/cycle_b.hpp:2:include-cycle",
  };
  std::vector<std::string> got = triples(r);
  std::vector<std::string> want = expected;
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
  for (const Finding& f : r.findings) {
    EXPECT_FALSE(f.message.empty()) << f.file << ":" << f.line;
  }
  // The malformed-but-matching suppression in bad_suppressions.cpp still
  // suppresses its naked-new (and is reported for having no reason).
  EXPECT_EQ(r.suppressions_used, 1u);
}

TEST(ZhLint, EveryRuleFiresOnTheViolationTree) {
  const LintResult r = zh::lint::run_lint(fixtures("violations"));
  std::set<std::string> fired;
  for (const Finding& f : r.findings) fired.insert(f.rule);
  for (const std::string& id : zh::lint::rule_ids()) {
    EXPECT_TRUE(fired.count(id) == 1) << "rule never fired: " << id;
  }
}

TEST(ZhLint, CleanTreeIsSilent) {
  const LintResult r = zh::lint::run_lint(fixtures("clean"));
  EXPECT_TRUE(r.findings.empty())
      << "first unexpected finding: " +
             (r.findings.empty()
                  ? std::string()
                  : r.findings[0].file + ":" +
                        std::to_string(r.findings[0].line) + ": " +
                        r.findings[0].rule + ": " + r.findings[0].message);
  EXPECT_EQ(r.files_scanned, 2u);
  // The clean tree's one suppression (reasoned leaky singleton) is used,
  // proving reasoned suppressions do not count as findings.
  EXPECT_EQ(r.suppressions_used, 1u);
}

TEST(ZhLint, RuleRegistryIsDocumented) {
  const auto& ids = zh::lint::rule_ids();
  EXPECT_GE(ids.size(), 7u);
  std::set<std::string> unique(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), ids.size());
  for (const std::string& id : ids) {
    EXPECT_FALSE(zh::lint::rule_description(id).empty()) << id;
  }
  EXPECT_TRUE(zh::lint::rule_description("not-a-rule").empty());
}

TEST(ZhLint, JsonReportMirrorsRunReportStyle) {
  const LintResult r = zh::lint::run_lint(fixtures("violations"));
  const std::string json = zh::lint::report_json(r, "violations");
  EXPECT_NE(json.find("\"schema\":\"zh-lint-report-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"tool\":\"zh-lint\""), std::string::npos);
  EXPECT_NE(json.find("\"findings_total\":" +
                      std::to_string(r.findings.size())),
            std::string::npos);
  // Per-rule counts cover every registered rule.
  for (const std::string& id : zh::lint::rule_ids()) {
    EXPECT_NE(json.find("\"id\":\"" + id + "\""), std::string::npos) << id;
  }
}

TEST(ZhLint, LexerStripsCommentsStringsAndRawStrings) {
  // The clean tree embeds `new int[rows * cols]` inside a string literal
  // and `std::cout` inside comments; silence there proves the stripper.
  const LintResult r = zh::lint::run_lint(fixtures("clean"));
  for (const Finding& f : r.findings) {
    EXPECT_NE(f.rule, "naked-new") << f.message;
    EXPECT_NE(f.rule, "stdio-in-lib") << f.message;
    EXPECT_NE(f.rule, "index-width") << f.message;
  }
}

TEST(ZhLint, MissingTreeScansNothing) {
  const LintResult r = zh::lint::run_lint(fixtures("does-not-exist"));
  EXPECT_EQ(r.files_scanned, 0u);
  EXPECT_TRUE(r.findings.empty());
}

}  // namespace
