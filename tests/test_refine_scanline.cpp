// Step-4 refinement-strategy properties (DESIGN.md, "Refinement
// strategies"): the scanline path must be bit-identical to the
// brute-force oracle on both granularities -- including adversarial
// geometry (horizontal edges exactly on a cell-center scanline, vertices
// coincident with cell centers, holes, multi-part polygons) -- its
// counters must obey the strategy contract, the y-banded edge index must
// match the ray-crossing y-predicate edge-for-edge, and kAuto must
// resolve by edge density.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "core/baseline.hpp"
#include "core/pipeline.hpp"
#include "core/step2_pairing.hpp"
#include "core/step4_refine.hpp"
#include "geom/edge_index.hpp"
#include "geom/pip.hpp"
#include "geom/soa.hpp"
#include "test_util.hpp"

namespace zh {
namespace {

struct RefineRun {
  HistogramSet hist;
  RefineCounters rc;
};

/// Pair + refine only (Steps 2 and 4): isolates the strategy under test
/// from Step 1/3 so histogram differences can only come from refinement.
RefineRun run_refine(const DemRaster& raster, const TilingScheme& tiling,
                     const PolygonSet& polys, BinIndex bins,
                     RefineGranularity g, RefineStrategy s) {
  Device dev;
  const PolygonSoA soa = PolygonSoA::build(polys);
  const PairingResult pairs =
      pair_and_group(polys, tiling, raster.transform());
  RefineRun out{HistogramSet(polys.size(), bins), {}};
  out.rc = refine_boundary_tiles(dev, pairs.intersect, soa, raster,
                                 tiling, out.hist, g, s);
  return out;
}

/// True if `p` lies exactly on a boundary segment of `poly` (where
/// crossing parity and winding number may legitimately disagree).
bool on_boundary(const Polygon& poly, const GeoPoint& p) {
  for (const Ring& ring : poly.rings()) {
    for (std::size_t i = 0; i < ring.size(); ++i) {
      const GeoPoint a = ring[i];
      const GeoPoint b = ring[(i + 1) % ring.size()];
      const double cross =
          (b.x - a.x) * (p.y - a.y) - (b.y - a.y) * (p.x - a.x);
      if (cross != 0.0) continue;
      if (p.x < std::min(a.x, b.x) || p.x > std::max(a.x, b.x)) continue;
      if (p.y < std::min(a.y, b.y) || p.y > std::max(a.y, b.y)) continue;
      return true;
    }
  }
  return false;
}

/// Adversarial fixture on a unit-cell grid with centers at half-integer
/// coordinates: an L-shaped outer ring whose horizontal edges sit exactly
/// on cell-center scanlines and whose vertices coincide with cell
/// centers, a hole, and a disjoint second part.
PolygonSet adversarial_polygons() {
  Polygon p({{{0.5, 0.5},
              {5.5, 0.5},
              {5.5, 4.5},
              {3.5, 4.5},
              {3.5, 6.5},
              {0.5, 6.5}}});
  p.add_ring({{1.5, 1.5}, {1.5, 3.5}, {2.5, 3.5}, {2.5, 1.5}});
  p.add_ring({{6.5, 5.5}, {7.5, 5.5}, {7.5, 7.5}, {6.5, 7.5}});
  PolygonSet set;
  set.add(std::move(p));
  return set;
}

TEST(RefineScanline, BitIdenticalToBruteOnRandomGeometry) {
  for (const std::uint32_t seed : {1u, 2u, 3u, 4u}) {
    const DemRaster raster = test::random_raster(
        96, 80, seed, 49, GeoTransform(0.0, 9.6, 0.1, 0.1));
    const TilingScheme tiling(96, 80, 16);
    const PolygonSet polys = test::random_polygon_set(
        seed * 13, GeoBox{0.5, 0.5, 7.5, 9.1}, 8, seed % 2 == 1);

    for (const RefineGranularity g : {RefineGranularity::kPolygonGroup,
                                      RefineGranularity::kPolygonTile}) {
      const RefineRun brute =
          run_refine(raster, tiling, polys, 50, g, RefineStrategy::kBrute);
      const RefineRun scan = run_refine(raster, tiling, polys, 50, g,
                                        RefineStrategy::kScanline);
      EXPECT_EQ(brute.hist, scan.hist)
          << "seed " << seed << " granularity " << static_cast<int>(g);

      // Strategy-invariant counters.
      EXPECT_EQ(brute.rc.cell_tests, scan.rc.cell_tests);
      EXPECT_EQ(brute.rc.cells_counted, scan.rc.cells_counted);
      ASSERT_GT(scan.rc.cell_tests, 0u);

      // Strategy contract: brute never scans rows, scanline classifies
      // every cell through runs and tests at most the banded edges (a
      // row's band is a subset of the polygon's tested edges, charged
      // once per row instead of once per cell).
      EXPECT_EQ(brute.rc.rows_scanned, 0u);
      EXPECT_EQ(brute.rc.run_cells, 0u);
      EXPECT_EQ(brute.rc.strategy, RefineStrategy::kBrute);
      EXPECT_GT(scan.rc.rows_scanned, 0u);
      EXPECT_EQ(scan.rc.run_cells, scan.rc.cell_tests);
      EXPECT_EQ(scan.rc.strategy, RefineStrategy::kScanline);
      EXPECT_LE(scan.rc.edge_tests, brute.rc.edge_tests);
    }
  }
}

TEST(RefineScanline, AdversarialGeometryMatchesBruteAndGroundTruth) {
  // One 8x8 tile so the whole raster refines through Step 4; result must
  // equal per-cell PiP over every cell, for both strategies, bit for bit.
  Device dev;
  DemRaster raster(8, 8, GeoTransform(0.0, 8.0, 1.0, 1.0));
  for (CellValue& v : raster.cells()) v = 2;
  const TilingScheme tiling(8, 8, 8);
  const PolygonSet set = adversarial_polygons();
  const PolygonSoA soa = PolygonSoA::build(set);

  for (const RefineGranularity g : {RefineGranularity::kPolygonGroup,
                                    RefineGranularity::kPolygonTile}) {
    const RefineRun brute =
        run_refine(raster, tiling, set, 4, g, RefineStrategy::kBrute);
    const RefineRun scan =
        run_refine(raster, tiling, set, 4, g, RefineStrategy::kScanline);
    EXPECT_EQ(brute.hist, scan.hist);

    BinCount expect = 0;
    for (std::int64_t r = 0; r < 8; ++r) {
      for (std::int64_t c = 0; c < 8; ++c) {
        const GeoPoint pt = raster.transform().cell_center(r, c);
        const bool in = point_in_polygon_soa(soa, 0, pt.x, pt.y);
        EXPECT_EQ(in, point_in_polygon(set[0], pt))
            << "SoA/object disagreement at (" << pt.x << "," << pt.y
            << ")";
        expect += in;
      }
    }
    EXPECT_EQ(brute.hist.of(0)[2], expect);
    EXPECT_EQ(scan.hist.of(0)[2], expect);
  }
}

TEST(RefineScanline, CrossingParityMatchesWindingOffBoundary) {
  // Winding-number cross-validation of the shared parity rule on the
  // adversarial fixture plus random stars: wherever the center is not
  // exactly on an edge, parity and winding must agree.
  const PolygonSet adversarial = adversarial_polygons();
  std::mt19937 rng(4242);
  std::vector<Polygon> polys;
  polys.push_back(adversarial[0]);
  for (int k = 0; k < 8; ++k) {
    polys.push_back(test::random_star_polygon(rng, 4.0, 4.0, 3.5, 7 + k,
                                              /*with_hole=*/k % 2 == 0));
  }
  const GeoTransform t(0.0, 8.0, 0.5, 0.5);
  int checked = 0;
  for (const Polygon& poly : polys) {
    for (std::int64_t r = 0; r < 16; ++r) {
      for (std::int64_t c = 0; c < 16; ++c) {
        const GeoPoint pt = t.cell_center(r, c);
        if (on_boundary(poly, pt)) continue;
        ++checked;
        EXPECT_EQ(point_in_polygon(poly, pt), winding_number(poly, pt) != 0)
            << "center (" << pt.x << "," << pt.y << ")";
      }
    }
  }
  EXPECT_GT(checked, 1000);  // the skip must not hollow out the test
}

TEST(RefineEdgeIndex, BandsMatchCrossingPredicateExactly) {
  const PolygonSet polys = test::random_polygon_set(
      91, GeoBox{0.5, 0.5, 9.5, 9.5}, 10, /*holes=*/true);
  const PolygonSoA soa = PolygonSoA::build(polys);
  const GeoTransform t(0.0, 10.0, 0.1, 0.1);
  const std::int64_t rows = 100;
  const EdgeIndex index = EdgeIndex::build(soa, t, rows);
  ASSERT_EQ(index.polygon_count(), polys.size());

  const std::span<const double> x_v = soa.x_v();
  const std::span<const double> y_v = soa.y_v();
  std::uint64_t entries = 0;
  for (PolygonId pid = 0; pid < polys.size(); ++pid) {
    const auto [p_f, p_t] = soa.vertex_range(pid);
    for (std::int64_t r = 0; r < rows; ++r) {
      const double py = t.cell_center(r, 0).y;
      // Reference band: replay the Fig.-5 loop's edge walk and keep the
      // edges whose y-span crosses the scanline under the half-open rule.
      std::vector<std::uint32_t> expect;
      for (std::uint32_t j = p_f; j + 1 < p_t; ++j) {
        if (x_v[j + 1] == 0.0 && y_v[j + 1] == 0.0) {
          ++j;  // sentinel edge + the next one are never tested
          continue;
        }
        const double y0 = y_v[j];
        const double y1 = y_v[j + 1];
        if (((y0 <= py) && (py < y1)) || ((y1 <= py) && (py < y0))) {
          expect.push_back(j);
        }
      }
      const std::span<const std::uint32_t> got = index.row_edges(pid, r);
      std::vector<std::uint32_t> got_sorted(got.begin(), got.end());
      std::sort(got_sorted.begin(), got_sorted.end());
      std::sort(expect.begin(), expect.end());
      ASSERT_EQ(got_sorted, expect) << "polygon " << pid << " row " << r;
      entries += got.size();
    }
  }
  EXPECT_EQ(index.stats().bucket_entries, entries);
  EXPECT_GT(index.stats().edges_dropped, 0u);  // ring sentinels exist
}

TEST(RefineEdgeIndex, OutOfBandRowsAreEmpty) {
  PolygonSet set;
  set.add(Polygon({{{0.5, 2.5}, {3.5, 2.5}, {3.5, 4.5}, {0.5, 4.5}}}));
  const PolygonSoA soa = PolygonSoA::build(set);
  const GeoTransform t(0.0, 10.0, 1.0, 1.0);
  const EdgeIndex index = EdgeIndex::build(soa, t, 10);
  // Centers at y = 9.5 .. 0.5. The square's vertical edges span
  // [2.5, 4.5) under the half-open crossing rule (horizontal edges are
  // dropped), so only the centers 3.5 (row 6) and 2.5 (row 7, the closed
  // end) are banded; 4.5 (row 5) falls on the open end.
  EXPECT_TRUE(index.row_edges(0, 0).empty());
  EXPECT_TRUE(index.row_edges(0, 4).empty());   // y=5.5 above the span
  EXPECT_TRUE(index.row_edges(0, 5).empty());   // y=4.5 on the open end
  EXPECT_FALSE(index.row_edges(0, 6).empty());  // y=3.5 inside
  EXPECT_FALSE(index.row_edges(0, 7).empty());  // y=2.5 on the closed end
  EXPECT_TRUE(index.row_edges(0, 8).empty());   // y=1.5 below
  EXPECT_TRUE(index.row_edges(0, 9).empty());
}

TEST(RefineAuto, ResolvesByEdgeDensity) {
  const DemRaster raster = test::random_raster(
      64, 64, 7, 9, GeoTransform(0.0, 6.4, 0.1, 0.1));
  const TilingScheme tiling(64, 64, 16);

  // Sparse: one triangle, 3 tested edges per pair -> brute.
  PolygonSet sparse;
  sparse.add(Polygon({{{0.7, 0.7}, {5.7, 0.9}, {2.9, 5.7}}}));
  const RefineRun lo =
      run_refine(raster, tiling, sparse, 10, RefineGranularity::kPolygonGroup,
                 RefineStrategy::kAuto);
  EXPECT_EQ(lo.rc.strategy, RefineStrategy::kBrute);
  EXPECT_EQ(lo.rc.rows_scanned, 0u);

  // Dense: a 64-vertex star, 64 tested edges per pair -> scanline.
  std::mt19937 rng(5);
  PolygonSet dense;
  dense.add(test::random_star_polygon(rng, 3.2, 3.2, 2.8, 64));
  const RefineRun hi =
      run_refine(raster, tiling, dense, 10, RefineGranularity::kPolygonGroup,
                 RefineStrategy::kAuto);
  EXPECT_EQ(hi.rc.strategy, RefineStrategy::kScanline);
  EXPECT_GT(hi.rc.rows_scanned, 0u);

  // Either way the result equals the explicitly-requested strategy's.
  const RefineRun lo_brute =
      run_refine(raster, tiling, sparse, 10, RefineGranularity::kPolygonGroup,
                 RefineStrategy::kBrute);
  const RefineRun hi_scan =
      run_refine(raster, tiling, dense, 10, RefineGranularity::kPolygonGroup,
                 RefineStrategy::kScanline);
  EXPECT_EQ(lo.hist, lo_brute.hist);
  EXPECT_EQ(hi.hist, hi_scan.hist);
}

TEST(RefinePipeline, StrategiesAgreeEndToEnd) {
  Device dev;
  const DemRaster raster = test::random_raster(
      90, 110, 21, 99, GeoTransform(0.0, 9.0, 0.1, 0.1));
  const PolygonSet polys = test::random_polygon_set(
      17, GeoBox{0.5, 0.5, 10.5, 8.5}, 10, /*holes=*/true);
  const HistogramSet expect = zonal_mbb_filter(raster, polys, 100);

  for (const RefineGranularity g : {RefineGranularity::kPolygonGroup,
                                    RefineGranularity::kPolygonTile}) {
    const ZonalResult brute =
        ZonalPipeline(dev, {.tile_size = 10,
                            .bins = 100,
                            .refine_granularity = g,
                            .refine_strategy = RefineStrategy::kBrute})
            .run(raster, polys);
    const ZonalResult scan =
        ZonalPipeline(dev, {.tile_size = 10,
                            .bins = 100,
                            .refine_granularity = g,
                            .refine_strategy = RefineStrategy::kScanline})
            .run(raster, polys);
    const ZonalResult autos =
        ZonalPipeline(dev, {.tile_size = 10,
                            .bins = 100,
                            .refine_granularity = g,
                            .refine_strategy = RefineStrategy::kAuto})
            .run(raster, polys);
    EXPECT_EQ(brute.per_polygon, expect);
    EXPECT_EQ(scan.per_polygon, expect);
    EXPECT_EQ(autos.per_polygon, expect);

    // Work-counter contract survives the full pipeline.
    EXPECT_EQ(brute.work.pip_rows_scanned, 0u);
    EXPECT_EQ(brute.work.pip_run_cells, 0u);
    EXPECT_GT(scan.work.pip_rows_scanned, 0u);
    EXPECT_EQ(scan.work.pip_run_cells, scan.work.pip_cell_tests);
    EXPECT_EQ(brute.work.pip_cell_tests, scan.work.pip_cell_tests);
    EXPECT_LE(scan.work.pip_edge_tests, brute.work.pip_edge_tests);
  }
}

}  // namespace
}  // namespace zh
