#include <gtest/gtest.h>

#include "data/dem_synth.hpp"
#include "grid/pyramid.hpp"
#include "test_util.hpp"

namespace zh {
namespace {

TEST(Pyramid, LevelDimsHalveAndGeoreferenceScales) {
  const DemRaster base = test::random_raster(
      100, 250, 1, 99, GeoTransform(-110.0, 45.0, 0.01, 0.01));
  const RasterPyramid p = RasterPyramid::build(base, 4);
  ASSERT_EQ(p.levels(), 4);
  EXPECT_EQ(p.level(0).rows(), 100);
  EXPECT_EQ(p.level(1).rows(), 50);
  EXPECT_EQ(p.level(1).cols(), 125);
  EXPECT_EQ(p.level(2).cols(), 63);  // ceil(125/2)
  EXPECT_EQ(p.level(3).rows(), 13);
  // Cell size doubles per level; origin is fixed.
  EXPECT_DOUBLE_EQ(p.level(2).transform().cell_w(), 0.04);
  EXPECT_DOUBLE_EQ(p.level(2).transform().origin_x(), -110.0);
}

TEST(Pyramid, NearestTakesTopLeft) {
  DemRaster base(4, 4);
  for (std::int64_t r = 0; r < 4; ++r) {
    for (std::int64_t c = 0; c < 4; ++c) {
      base.at(r, c) = static_cast<CellValue>(r * 4 + c);
    }
  }
  const RasterPyramid p =
      RasterPyramid::build(base, 2, Resample::kNearest);
  EXPECT_EQ(p.level(1).at(0, 0), 0);
  EXPECT_EQ(p.level(1).at(0, 1), 2);
  EXPECT_EQ(p.level(1).at(1, 0), 8);
  EXPECT_EQ(p.level(1).at(1, 1), 10);
}

TEST(Pyramid, ModePicksMajorityWithDeterministicTies) {
  DemRaster base(2, 4);
  // Block 1: {5,5,9,5} -> 5. Block 2: {1,2,2,1} -> tie, smallest = 1.
  base.at(0, 0) = 5;
  base.at(0, 1) = 5;
  base.at(1, 0) = 9;
  base.at(1, 1) = 5;
  base.at(0, 2) = 1;
  base.at(0, 3) = 2;
  base.at(1, 2) = 2;
  base.at(1, 3) = 1;
  const RasterPyramid p = RasterPyramid::build(base, 2, Resample::kMode);
  EXPECT_EQ(p.level(1).at(0, 0), 5);
  EXPECT_EQ(p.level(1).at(0, 1), 1);
}

TEST(Pyramid, ModePreservesCategoricalDomain) {
  // Mode never invents values: every overview cell holds a base value.
  const DemRaster lc = generate_landcover(
      128, 128, GeoTransform(0.0, 1.28, 0.01, 0.01), 6);
  const RasterPyramid p = RasterPyramid::build(lc, 5, Resample::kMode);
  for (int k = 1; k < p.levels(); ++k) {
    for (const CellValue v : p.level(k).cells()) {
      ASSERT_LT(v, 6);
    }
  }
}

TEST(Pyramid, StopsAtOneCell) {
  const DemRaster base = test::random_raster(9, 5, 2, 9);
  const RasterPyramid p = RasterPyramid::build(base, 100);
  EXPECT_LE(p.level(p.levels() - 1).rows(), 1);
  EXPECT_LE(p.level(p.levels() - 1).cols(), 2);
  EXPECT_LT(p.levels(), 10);
}

TEST(Pyramid, LevelForEdgeSelectsCoarsestFit) {
  const DemRaster base = test::random_raster(400, 400, 3, 9);
  const RasterPyramid p = RasterPyramid::build(base, 5);
  EXPECT_EQ(p.level_for_edge(500).rows(), 400);
  EXPECT_EQ(p.level_for_edge(200).rows(), 200);
  EXPECT_EQ(p.level_for_edge(60).rows(), 50);
  EXPECT_EQ(p.level_for_edge(1).rows(), 25);  // coarsest available
}

TEST(Pyramid, TotalCellsNearFourThirds) {
  const DemRaster base = test::random_raster(512, 512, 4, 9);
  const RasterPyramid p = RasterPyramid::build(base, 10);
  const double ratio = static_cast<double>(p.total_cells()) /
                       static_cast<double>(base.cell_count());
  EXPECT_GT(ratio, 1.3);
  EXPECT_LT(ratio, 1.4);
}

TEST(Pyramid, RejectsZeroLevels) {
  const DemRaster base = test::random_raster(4, 4, 1, 9);
  EXPECT_THROW(RasterPyramid::build(base, 0), InvalidArgument);
  const RasterPyramid p = RasterPyramid::build(base, 2);
  EXPECT_THROW((void)p.level(5), InvalidArgument);
}

}  // namespace
}  // namespace zh
