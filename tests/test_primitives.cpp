// Property tests: every primitive matches its sequential std:: analog on
// random inputs across a sweep of sizes (DESIGN.md invariant 5).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <vector>

#include "primitives/primitives.hpp"

namespace zh {
namespace {

std::vector<std::uint32_t> random_u32(std::size_t n, std::uint32_t seed,
                                      std::uint32_t max_value) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<std::uint32_t> dist(0, max_value);
  std::vector<std::uint32_t> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

class PrimitiveSweep : public ::testing::TestWithParam<std::size_t> {};

INSTANTIATE_TEST_SUITE_P(Sizes, PrimitiveSweep,
                         ::testing::Values(0, 1, 2, 7, 100, 1023, 4096,
                                           65537, 200000));

TEST_P(PrimitiveSweep, SequenceMatchesIota) {
  const std::size_t n = GetParam();
  std::vector<std::uint32_t> out(n);
  prim::sequence<std::uint32_t>(out, 5);
  std::vector<std::uint32_t> expect(n);
  std::iota(expect.begin(), expect.end(), 5u);
  EXPECT_EQ(out, expect);
}

TEST_P(PrimitiveSweep, TransformMatchesStd) {
  const std::size_t n = GetParam();
  const auto in = random_u32(n, 1, 1000);
  std::vector<std::uint64_t> out(n);
  prim::transform<std::uint32_t, std::uint64_t>(
      in, out, [](std::uint32_t v) { return std::uint64_t{v} * 3 + 1; });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], std::uint64_t{in[i]} * 3 + 1);
  }
}

TEST_P(PrimitiveSweep, ReduceMatchesAccumulate) {
  const std::size_t n = GetParam();
  const auto in = random_u32(n, 2, 1 << 20);
  std::vector<std::uint64_t> wide(in.begin(), in.end());
  const std::uint64_t got =
      prim::reduce<std::uint64_t>(wide, std::uint64_t{10});
  const std::uint64_t expect =
      std::accumulate(wide.begin(), wide.end(), std::uint64_t{10});
  EXPECT_EQ(got, expect);
}

TEST_P(PrimitiveSweep, ExclusiveScanMatchesStd) {
  const std::size_t n = GetParam();
  const auto in = random_u32(n, 3, 100);
  std::vector<std::uint32_t> got(n);
  prim::exclusive_scan<std::uint32_t>(in, got, 7);
  std::vector<std::uint32_t> expect(n);
  std::exclusive_scan(in.begin(), in.end(), expect.begin(), 7u);
  EXPECT_EQ(got, expect);
}

TEST_P(PrimitiveSweep, InclusiveScanMatchesStd) {
  const std::size_t n = GetParam();
  const auto in = random_u32(n, 4, 100);
  std::vector<std::uint32_t> got(n);
  prim::inclusive_scan<std::uint32_t>(in, got);
  std::vector<std::uint32_t> expect(n);
  std::inclusive_scan(in.begin(), in.end(), expect.begin());
  EXPECT_EQ(got, expect);
}

TEST_P(PrimitiveSweep, StableSortPermutationIsStableAndSorted) {
  const std::size_t n = GetParam();
  // Few distinct keys -> many ties, stressing stability.
  const auto keys = random_u32(n, 5, 7);
  const auto perm =
      prim::stable_sort_permutation<std::uint32_t>(keys);
  ASSERT_EQ(perm.size(), n);
  for (std::size_t i = 1; i < n; ++i) {
    const auto a = keys[perm[i - 1]];
    const auto b = keys[perm[i]];
    ASSERT_LE(a, b);
    if (a == b) {
      ASSERT_LT(perm[i - 1], perm[i]) << "stability violated";
    }
  }
}

TEST_P(PrimitiveSweep, StableSortByKeyMatchesStdStableSort) {
  const std::size_t n = GetParam();
  auto keys = random_u32(n, 6, 50);
  std::vector<std::uint32_t> vals(n);
  std::iota(vals.begin(), vals.end(), 0u);

  std::vector<std::pair<std::uint32_t, std::uint32_t>> expect(n);
  for (std::size_t i = 0; i < n; ++i) expect[i] = {keys[i], vals[i]};
  std::stable_sort(expect.begin(), expect.end(),
                   [](auto& a, auto& b) { return a.first < b.first; });

  prim::stable_sort_by_key(keys, vals);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(keys[i], expect[i].first);
    ASSERT_EQ(vals[i], expect[i].second);
  }
}

TEST_P(PrimitiveSweep, CopyIfMatchesStd) {
  const std::size_t n = GetParam();
  const auto in = random_u32(n, 7, 1000);
  auto pred = [](std::uint32_t v) { return v % 3 == 0; };
  const auto got = prim::copy_if<std::uint32_t>(in, pred);
  std::vector<std::uint32_t> expect;
  std::copy_if(in.begin(), in.end(), std::back_inserter(expect), pred);
  EXPECT_EQ(got, expect);
}

TEST_P(PrimitiveSweep, GatherScatterRoundTrip) {
  const std::size_t n = GetParam();
  const auto src = random_u32(n, 8, 1 << 30);
  // A permutation as indices.
  std::vector<std::uint32_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0u);
  std::shuffle(idx.begin(), idx.end(), std::mt19937(9));

  std::vector<std::uint32_t> gathered(n);
  prim::gather<std::uint32_t, std::uint32_t>(idx, src, gathered);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(gathered[i], src[idx[i]]);

  std::vector<std::uint32_t> scattered(n);
  prim::scatter<std::uint32_t, std::uint32_t>(gathered, idx, scattered);
  EXPECT_EQ(scattered, src);
}

TEST(Primitives, ReduceByKeyCollapsesRuns) {
  const std::vector<std::uint32_t> keys = {1, 1, 2, 2, 2, 5, 1};
  const std::vector<std::uint32_t> vals = {1, 2, 3, 4, 5, 6, 7};
  const auto [k, v] = prim::reduce_by_key<std::uint32_t, std::uint32_t>(
      keys, vals);
  EXPECT_EQ(k, (std::vector<std::uint32_t>{1, 2, 5, 1}));
  EXPECT_EQ(v, (std::vector<std::uint32_t>{3, 12, 6, 7}));
}

TEST(Primitives, ReduceByKeyEmpty) {
  const auto [k, v] = prim::reduce_by_key<std::uint32_t, std::uint32_t>(
      {}, {});
  EXPECT_TRUE(k.empty());
  EXPECT_TRUE(v.empty());
}

TEST(Primitives, StablePartitionByKeyPreservesOrder) {
  std::vector<std::uint32_t> keys = {3, 1, 4, 1, 5, 9, 2, 6};
  std::vector<char> vals = {'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h'};
  const std::size_t t = prim::stable_partition_by_key(
      keys, vals, [](std::uint32_t k) { return k % 2 == 0; });
  EXPECT_EQ(t, 3u);
  EXPECT_EQ(keys, (std::vector<std::uint32_t>{4, 2, 6, 3, 1, 1, 5, 9}));
  EXPECT_EQ(vals, (std::vector<char>{'c', 'g', 'h', 'a', 'b', 'd', 'e',
                                     'f'}));
}

TEST(Primitives, RunStartsFindsSegments) {
  const std::vector<std::uint32_t> keys = {4, 4, 4, 7, 9, 9};
  EXPECT_EQ(prim::run_starts<std::uint32_t>(keys),
            (std::vector<std::size_t>{0, 3, 4}));
  EXPECT_TRUE(prim::run_starts<std::uint32_t>({}).empty());
}

TEST(Primitives, SortByKeyTwoValueArrays) {
  std::vector<std::uint32_t> keys = {2, 0, 1};
  std::vector<std::uint32_t> v1 = {20, 0, 10};
  std::vector<char> v2 = {'c', 'a', 'b'};
  prim::stable_sort_by_key(keys, v1, v2);
  EXPECT_EQ(keys, (std::vector<std::uint32_t>{0, 1, 2}));
  EXPECT_EQ(v1, (std::vector<std::uint32_t>{0, 10, 20}));
  EXPECT_EQ(v2, (std::vector<char>{'a', 'b', 'c'}));
}

TEST(Primitives, SizeMismatchThrows) {
  std::vector<std::uint32_t> keys = {1, 2};
  std::vector<std::uint32_t> vals = {1};
  EXPECT_THROW(prim::stable_sort_by_key(keys, vals), InvalidArgument);
  std::vector<std::uint32_t> out(3);
  EXPECT_THROW(
      prim::exclusive_scan<std::uint32_t>(std::span<const std::uint32_t>(
                                              keys),
                                          out),
      InvalidArgument);
}

}  // namespace
}  // namespace zh
