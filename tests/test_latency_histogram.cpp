// Latency histogram + rolling window: bucket indexing is monotone with
// tight bounds, quantiles respect the documented relative-error bound
// across 12 orders of magnitude, merge is exact/associative/commutative,
// since() yields clamped deltas, the registry round-trips kLatency and
// kGaugeSet metrics (including across thread retirement), and the
// rolling window expires/rates correctly. The Obs* suite names put this
// file in the TSan matrix; the concurrent tests are written for it.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/latency_histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/rolling_window.hpp"

namespace zh {
namespace {

struct ObsGuard {
  ObsGuard() {
    obs::set_metrics_enabled(false);
    obs::metrics_reset();
  }
  ~ObsGuard() {
    obs::set_metrics_enabled(false);
    obs::metrics_reset();
  }
};

const obs::MetricRecord* find_metric(
    const std::vector<obs::MetricRecord>& all, const std::string& name) {
  for (const obs::MetricRecord& m : all) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

TEST(ObsLatencyBuckets, SentinelsAndBoundaries) {
  using namespace obs;
  EXPECT_EQ(latency_bucket_index(0.0), 0u);
  EXPECT_EQ(latency_bucket_index(-1.0), 0u);
  EXPECT_EQ(latency_bucket_index(std::nan("")), 0u);
  EXPECT_EQ(latency_bucket_index(std::ldexp(1.0, kLatencyMinExp2) / 2), 0u);
  // First body bucket starts exactly at 2^kLatencyMinExp2.
  EXPECT_EQ(latency_bucket_index(std::ldexp(1.0, kLatencyMinExp2)), 1u);
  // Overflow at and above 2^kLatencyMaxExp2.
  EXPECT_EQ(latency_bucket_index(std::ldexp(1.0, kLatencyMaxExp2)),
            kLatencyBucketCount - 1);
  EXPECT_EQ(latency_bucket_index(1e12), kLatencyBucketCount - 1);
  // Largest finite body value lands in the last body bucket.
  EXPECT_EQ(latency_bucket_index(
                std::nextafter(std::ldexp(1.0, kLatencyMaxExp2), 0.0)),
            kLatencyBucketCount - 2);
}

TEST(ObsLatencyBuckets, IndexIsMonotoneAndBoundsContainValues) {
  using namespace obs;
  std::size_t prev = 0;
  for (double v = 1e-9; v < 5000.0; v *= 1.07) {
    const std::size_t idx = latency_bucket_index(v);
    EXPECT_GE(idx, prev) << "index not monotone at v=" << v;
    prev = idx;
    if (idx == 0 || idx == kLatencyBucketCount - 1) continue;
    EXPECT_GE(v, latency_bucket_lower(idx)) << "v=" << v;
    EXPECT_LT(v, latency_bucket_upper(idx)) << "v=" << v;
    const double mid = latency_bucket_mid(idx);
    EXPECT_GE(mid, latency_bucket_lower(idx));
    EXPECT_LE(mid, latency_bucket_upper(idx));
  }
}

TEST(ObsLatencyQuantile, RelativeErrorBoundAcrossTwelveOrders) {
  // Single-value histograms: p50 must reproduce the value within the
  // documented 1/(2*kLatencySubBuckets) relative bound, from ns to ks.
  const double bound = 1.0 / (2.0 * obs::kLatencySubBuckets) + 1e-12;
  for (double v = 1e-9; v < 4000.0; v *= 1.9) {
    obs::LatencyHistogram h;
    h.record(v);
    const double p50 = h.quantile(0.5);
    EXPECT_NEAR(p50, v, v * bound) << "v=" << v;
  }
}

TEST(ObsLatencyQuantile, RanksAndClamping) {
  obs::LatencyHistogram h;
  EXPECT_EQ(h.quantile(0.5), 0.0);  // empty
  for (int i = 1; i <= 100; ++i) h.record(i * 1e-3);
  EXPECT_EQ(h.count(), 100u);
  const double bound = 1.0 / (2.0 * obs::kLatencySubBuckets) + 1e-12;
  EXPECT_NEAR(h.quantile(0.5), 0.050, 0.050 * bound);
  EXPECT_NEAR(h.quantile(0.99), 0.099, 0.099 * bound);
  // q<=0 and q>=1 clamp to the extreme ranks; extremes clamp to the
  // exact observed min/max, not bucket midpoints.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.001);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.100);
  EXPECT_DOUBLE_EQ(h.quantile(-3.0), 0.001);
  EXPECT_DOUBLE_EQ(h.quantile(7.0), 0.100);
  EXPECT_DOUBLE_EQ(h.min(), 0.001);
  EXPECT_DOUBLE_EQ(h.max(), 0.100);
}

TEST(ObsLatencyMerge, ExactAssociativeCommutative) {
  // Values whose sums are exactly representable, so sum() comparisons
  // are == and associativity is not blurred by float rounding.
  auto fill = [](obs::LatencyHistogram& h, double base, int n) {
    for (int i = 0; i < n; ++i) h.record(base * (1 + i % 4));
  };
  obs::LatencyHistogram a, b, c;
  fill(a, 0.125, 10);
  fill(b, 0.25, 7);
  fill(c, 2.0, 13);

  obs::LatencyHistogram ab_c = a;
  ab_c.merge(b);
  ab_c.merge(c);
  obs::LatencyHistogram a_bc = b;
  a_bc.merge(c);
  a_bc.merge(a);  // also permutes the order -> commutativity

  EXPECT_EQ(ab_c.count(), 30u);
  EXPECT_EQ(ab_c.count(), a_bc.count());
  EXPECT_EQ(ab_c.sum(), a_bc.sum());
  EXPECT_EQ(ab_c.min(), a_bc.min());
  EXPECT_EQ(ab_c.max(), a_bc.max());
  EXPECT_EQ(ab_c.buckets(), a_bc.buckets());

  // Merging an empty histogram in either direction is the identity.
  obs::LatencyHistogram empty;
  obs::LatencyHistogram a2 = a;
  a2.merge(empty);
  EXPECT_EQ(a2.buckets(), a.buckets());
  obs::LatencyHistogram e2;
  e2.merge(a);
  EXPECT_EQ(e2.buckets(), a.buckets());
  EXPECT_EQ(e2.min(), a.min());
  EXPECT_EQ(e2.max(), a.max());
}

TEST(ObsLatencySince, DeltaAndResetClamping) {
  obs::LatencyHistogram old;
  for (int i = 0; i < 5; ++i) old.record(0.010);
  obs::LatencyHistogram now = old;
  for (int i = 0; i < 3; ++i) now.record(1.0);

  const obs::LatencyHistogram delta = now.since(old);
  EXPECT_EQ(delta.count(), 3u);
  const double bound = 1.0 / (2.0 * obs::kLatencySubBuckets) + 1e-12;
  EXPECT_NEAR(delta.quantile(0.5), 1.0, 1.0 * bound);
  // min of the delta is bucket-resolution: near 1.0, not 0.010.
  EXPECT_GT(delta.min(), 0.5);

  // A reset in between (older snapshot has MORE samples) must clamp to
  // an empty delta, not wrap.
  const obs::LatencyHistogram wrapped = old.since(now);
  EXPECT_TRUE(wrapped.empty());
}

TEST(ObsLatencyRegistry, RecordSnapshotRoundTrip) {
  ObsGuard guard;
  obs::set_metrics_enabled(true);
  const obs::MetricId id =
      obs::metric_id("test.latency_rt", obs::MetricKind::kLatency);
  for (int i = 1; i <= 50; ++i) obs::latency_record(id, i * 1e-4);

  const auto snap = obs::metrics_snapshot();
  const obs::MetricRecord* m = find_metric(snap, "test.latency_rt");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind, obs::MetricKind::kLatency);
  EXPECT_EQ(m->count, 50u);
  EXPECT_EQ(m->latency.count(), 50u);
  const double bound = 1.0 / (2.0 * obs::kLatencySubBuckets) + 1e-12;
  EXPECT_NEAR(m->latency.quantile(0.5), 25e-4, 25e-4 * bound);
  EXPECT_DOUBLE_EQ(m->min, 1e-4);
  EXPECT_DOUBLE_EQ(m->max, 50e-4);

  obs::metrics_reset();
  const auto after = obs::metrics_snapshot();
  const obs::MetricRecord* r = find_metric(after, "test.latency_rt");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->count, 0u);
  EXPECT_TRUE(r->latency.empty());
}

TEST(ObsLatencyRegistry, MergesAcrossThreadsAndRetiredShards) {
  ObsGuard guard;
  obs::set_metrics_enabled(true);
  const obs::MetricId id =
      obs::metric_id("test.latency_mt", obs::MetricKind::kLatency);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([id, t] {
      for (int i = 0; i < kPerThread; ++i) {
        obs::latency_record(id, (t + 1) * 1e-3);
      }
    });
  }
  for (std::thread& th : threads) th.join();  // shards retire here

  const auto snap = obs::metrics_snapshot();
  const obs::MetricRecord* m = find_metric(snap, "test.latency_mt");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->count, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(m->latency.count(), m->count);
  EXPECT_DOUBLE_EQ(m->min, 1e-3);
  EXPECT_DOUBLE_EQ(m->max, 4e-3);
}

TEST(ObsLatencyRegistry, ConcurrentRecordAndSnapshot) {
  // Recorders hammer one latency series while a reader snapshots in a
  // loop; TSan asserts the lazy bucket-install and merge paths are
  // race-free, and the final merged count must be exact.
  ObsGuard guard;
  obs::set_metrics_enabled(true);
  const obs::MetricId id =
      obs::metric_id("test.latency_race", obs::MetricKind::kLatency);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> recorders;
  for (int t = 0; t < kThreads; ++t) {
    recorders.emplace_back([id] {
      for (int i = 0; i < kPerThread; ++i) {
        obs::latency_record(id, 1e-3 + (i % 32) * 1e-5);
      }
    });
  }
  std::uint64_t last_seen = 0;
  for (int i = 0; i < 50; ++i) {
    const auto snap = obs::metrics_snapshot();
    const obs::MetricRecord* m = find_metric(snap, "test.latency_race");
    if (m != nullptr) {
      EXPECT_GE(m->count, last_seen) << "count went backwards";
      EXPECT_EQ(m->latency.count(), m->count);
      last_seen = m->count;
    }
  }
  for (std::thread& th : recorders) th.join();
  const auto snap = obs::metrics_snapshot();
  const obs::MetricRecord* m = find_metric(snap, "test.latency_race");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->count, static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(ObsGaugeSet, LastValueWinsAndCanGoDown) {
  ObsGuard guard;
  obs::set_metrics_enabled(true);
  const obs::MetricId id =
      obs::metric_id("test.gauge_level", obs::MetricKind::kGaugeSet);
  obs::gauge_set(id, 100);
  obs::gauge_set(id, 5000);
  obs::gauge_set(id, 42);  // a kGauge would pin 5000; a level gauge drops
  const auto snap = obs::metrics_snapshot();
  const obs::MetricRecord* m = find_metric(snap, "test.gauge_level");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind, obs::MetricKind::kGaugeSet);
  EXPECT_EQ(m->value, 42u);
}

TEST(ObsGaugeSet, CrossThreadTicketOrderSurvivesRetirement) {
  // Two writer generations: the second thread runs strictly after the
  // first has exited (its shard retired), so the merge must prefer the
  // later ticket held by a LIVE shard over the retired accumulator.
  ObsGuard guard;
  obs::set_metrics_enabled(true);
  const obs::MetricId id =
      obs::metric_id("test.gauge_gen", obs::MetricKind::kGaugeSet);
  std::thread first([id] { obs::gauge_set(id, 111); });
  first.join();
  std::thread second([id] { obs::gauge_set(id, 222); });
  second.join();
  obs::gauge_set(id, 333);  // main thread draws the newest ticket
  const auto snap = obs::metrics_snapshot();
  const obs::MetricRecord* m = find_metric(snap, "test.gauge_gen");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->value, 333u);

  obs::metrics_reset();
  const auto after = obs::metrics_snapshot();
  const obs::MetricRecord* r = find_metric(after, "test.gauge_gen");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->value, 0u);
}

TEST(ObsRollingWindow, RateOverTrailingWindow) {
  ObsGuard guard;
  obs::set_metrics_enabled(true);
  const obs::MetricId id =
      obs::metric_id("test.win_counter", obs::MetricKind::kCounter);

  obs::RollingWindow win(120.0, 16);
  obs::counter_add(id, 100);
  win.push(0.0, obs::metrics_snapshot());
  obs::counter_add(id, 100);
  win.push(10.0, obs::metrics_snapshot());
  obs::counter_add(id, 300);
  win.push(20.0, obs::metrics_snapshot());

  // 20s window at t=20: baseline is the t=0 sample -> 400 over 20 s.
  const obs::WindowRate r20 = win.rate("test.win_counter", 20.0, 20.0);
  ASSERT_TRUE(r20.valid);
  EXPECT_EQ(r20.delta, 400u);
  EXPECT_DOUBLE_EQ(r20.span_seconds, 20.0);
  EXPECT_DOUBLE_EQ(r20.per_second, 20.0);

  // 10s window: baseline is the t=10 sample -> 300 over 10 s.
  const obs::WindowRate r10 = win.rate("test.win_counter", 10.0, 20.0);
  ASSERT_TRUE(r10.valid);
  EXPECT_EQ(r10.delta, 300u);
  EXPECT_DOUBLE_EQ(r10.per_second, 30.0);

  // Unknown series and single-sample windows are invalid, not zero.
  EXPECT_FALSE(win.rate("test.no_such", 10.0, 20.0).valid);
  obs::RollingWindow fresh(120.0, 16);
  fresh.push(0.0, obs::metrics_snapshot());
  EXPECT_FALSE(fresh.rate("test.win_counter", 10.0, 0.0).valid);
}

TEST(ObsRollingWindow, ExpiryByAgeAndCapacity) {
  ObsGuard guard;
  obs::set_metrics_enabled(true);
  obs::RollingWindow win(30.0, 4);
  for (int i = 0; i < 10; ++i) {
    win.push(static_cast<double>(i), obs::metrics_snapshot());
  }
  EXPECT_EQ(win.size(), 4u);  // capacity cap
  win.push(100.0, obs::metrics_snapshot());
  // Everything older than 100 - 30 expired; only the new sample stays.
  EXPECT_EQ(win.size(), 1u);
}

TEST(ObsRollingWindow, WindowedLatencyQuantiles) {
  ObsGuard guard;
  obs::set_metrics_enabled(true);
  const obs::MetricId id =
      obs::metric_id("latency.win_test", obs::MetricKind::kLatency);

  obs::RollingWindow win(120.0, 16);
  for (int i = 0; i < 100; ++i) obs::latency_record(id, 1e-3);
  win.push(0.0, obs::metrics_snapshot());
  for (int i = 0; i < 50; ++i) obs::latency_record(id, 1.0);
  win.push(10.0, obs::metrics_snapshot());

  // The trailing 10 s contain only the 1.0 s samples: the cumulative
  // p50 would be 1 ms, the windowed p50 must be ~1 s.
  const obs::LatencyHistogram delta =
      win.latency_delta("latency.win_test", 10.0, 10.0);
  EXPECT_EQ(delta.count(), 50u);
  const double bound = 1.0 / (2.0 * obs::kLatencySubBuckets) + 1e-12;
  EXPECT_NEAR(delta.quantile(0.5), 1.0, 1.0 * bound);

  EXPECT_TRUE(win.latency_delta("latency.absent", 10.0, 10.0).empty());
}

}  // namespace
}  // namespace zh
