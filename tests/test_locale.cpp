// Locale independence of every text format (regression).
//
// Number parsing used std::strtod, which honors LC_NUMERIC, and the
// stream-based readers/writers picked up whatever global locale the
// embedding process had installed: a comma-decimal locale (de_DE shape)
// truncated "1.5" to 1 when parsing and emitted "1,5" / "1.234"
// (grouping) when writing, silently corrupting coordinates, rasters and
// CSVs. The fixes: std::from_chars in the parsers (locale-independent
// by definition), imbue(std::locale::classic()) on every numeric
// stream, and std::to_chars in the JSON report writer.
//
// The container may ship no de_DE locale pack, so the C++-stream paths
// are exercised with a hand-built comma numpunct facet installed as the
// global locale (always available); the C-library paths (strtod's
// LC_NUMERIC) are additionally exercised under a real comma-decimal
// setlocale when the OS provides one, and skipped otherwise.
#include <gtest/gtest.h>

#include <unistd.h>

#include <clocale>
#include <filesystem>
#include <fstream>
#include <locale>
#include <sstream>
#include <string>

#include "geom/wkt.hpp"
#include "io/ascii_grid.hpp"
#include "io/geojson.hpp"
#include "io/histogram_io.hpp"
#include "io/vector_io.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"
#include "test_util.hpp"

namespace zh {
namespace {

/// The de_DE number shape without needing an OS locale pack: comma
/// decimal point, dot thousands separator, groups of three.
struct CommaPunct : std::numpunct<char> {
  char do_decimal_point() const override { return ','; }
  char do_thousands_sep() const override { return '.'; }
  std::string do_grouping() const override { return "\3"; }
};

/// Install the comma facet as the global C++ locale for one scope.
/// The locale is nameless, so std::locale::global does NOT touch the
/// C library's setlocale state.
class CommaLocaleScope {
 public:
  CommaLocaleScope()
      : prev_(std::locale::global(
            std::locale(std::locale::classic(), new CommaPunct))) {}
  ~CommaLocaleScope() { std::locale::global(prev_); }

  CommaLocaleScope(const CommaLocaleScope&) = delete;
  CommaLocaleScope& operator=(const CommaLocaleScope&) = delete;

 private:
  std::locale prev_;
};

/// Try to install a real comma-decimal C locale (LC_NUMERIC). Returns
/// the locale name on success, empty if the OS has none installed.
std::string try_comma_c_locale() {
  for (const char* cand :
       {"de_DE.UTF-8", "de_DE.utf8", "de_DE", "fr_FR.UTF-8", "fr_FR.utf8"}) {
    if (std::setlocale(LC_NUMERIC, cand) != nullptr) return cand;
  }
  return {};
}

class LocaleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("zh_locale_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::setlocale(LC_NUMERIC, "C");
    std::filesystem::remove_all(dir_);
  }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  [[nodiscard]] static std::string slurp(const std::string& p) {
    std::ifstream is(p, std::ios::binary);
    std::ostringstream buf;
    buf << is.rdbuf();
    return buf.str();
  }

  std::filesystem::path dir_;
};

DemRaster fractional_raster() {
  // Fractional cell size and origin so every header double has a
  // decimal point; >=1000 cols would exercise integer grouping too but
  // keep the raster small and push grouping through the CSV tests.
  DemRaster r = test::random_raster(13, 17, 0, 4000,
                                    GeoTransform(-101.125, 42.5, 0.125, 0.125));
  r.set_nodata(CellValue{65535});
  return r;
}

TEST_F(LocaleTest, AsciiGridWrittenUnderCommaLocaleIsCanonical) {
  const DemRaster r = fractional_raster();
  write_ascii_grid(path("classic.asc"), r);
  {
    CommaLocaleScope comma;
    write_ascii_grid(path("comma.asc"), r);
  }
  // Byte-identical: the file format owns its locale, not the process.
  EXPECT_EQ(slurp(path("comma.asc")), slurp(path("classic.asc")));
}

TEST_F(LocaleTest, AsciiGridReadsClassicFileUnderCommaLocale) {
  const DemRaster r = fractional_raster();
  write_ascii_grid(path("a.asc"), r);
  CommaLocaleScope comma;
  const DemRaster back = read_ascii_grid(path("a.asc"));
  EXPECT_EQ(back, r);
}

TEST_F(LocaleTest, PointsCsvRoundTripsUnderCommaLocale) {
  PointSet pts;
  pts.add(-101.375, 42.0625, 1.5);
  pts.add(3.25, -0.125, 2.75);
  CommaLocaleScope comma;
  write_points_csv(path("p.csv"), pts);
  const PointSet back = read_points_csv(path("p.csv"));
  ASSERT_EQ(back.size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(back.x[i], pts.x[i]);
    EXPECT_EQ(back.y[i], pts.y[i]);
    EXPECT_EQ(back.weight[i], pts.weight[i]);
  }
}

TEST_F(LocaleTest, HistogramCsvSurvivesGroupingLocale) {
  // Counts above 1000: a grouping locale would write "1.234" and the
  // reader would stop at the separator.
  HistogramSet h(2, 3);
  h.of(0)[1] = 1234567;
  h.of(1)[2] = 1000;
  CommaLocaleScope comma;
  write_histogram_csv(path("h.csv"), h);
  const HistogramSet back = read_histogram_csv(path("h.csv"), 2, 3);
  EXPECT_EQ(back, h);
}

TEST_F(LocaleTest, WktRoundTripsUnderCommaLocale) {
  const Polygon poly({{{0.5, 0.5}, {9.25, 0.75}, {4.125, 8.625}}});
  const std::string classic_wkt = to_wkt(poly);
  CommaLocaleScope comma;
  EXPECT_EQ(to_wkt(poly), classic_wkt);
  const Polygon back = parse_wkt(classic_wkt);
  ASSERT_EQ(back.rings().size(), 1u);
  EXPECT_EQ(back.rings()[0][1].x, 9.25);
  EXPECT_EQ(back.rings()[0][2].y, 8.625);
}

TEST_F(LocaleTest, GeoJsonRoundTripsUnderCommaLocale) {
  PolygonSet set;
  set.add(Polygon({{{0.5, 0.5}, {9.25, 0.75}, {4.125, 8.625}}}), "zone");
  const std::string classic_json = to_geojson(set);
  CommaLocaleScope comma;
  EXPECT_EQ(to_geojson(set), classic_json);
  const PolygonSet back = parse_geojson(classic_json);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].rings()[0][1].x, 9.25);
  EXPECT_EQ(back[0].rings()[0][2].y, 8.625);
}

TEST_F(LocaleTest, ObsJsonParsesAndEmitsUnderCommaLocale) {
  CommaLocaleScope comma;
  const obs::JsonValue v = obs::parse_json(R"({"t": 1.5, "n": -0.125})");
  ASSERT_NE(v.find("t"), nullptr);
  EXPECT_EQ(v.find("t")->number, 1.5);
  EXPECT_EQ(v.find("n")->number, -0.125);

  obs::RunReport report;
  report.tool = "test_locale";
  report.workload = "locale";
  report.include_metrics = false;
  report.has_times = true;
  report.times.seconds[1] = 0.125;
  const std::string json = obs::report_json(report);
  EXPECT_NE(json.find("0.125"), std::string::npos)
      << "step1 wall time not emitted in C-locale form: " << json;
  const obs::JsonValue parsed = obs::parse_json(json);
  const obs::JsonValue* times = parsed.find("times_s");
  ASSERT_NE(times, nullptr);
  ASSERT_NE(times->find("step1"), nullptr);
  EXPECT_EQ(times->find("step1")->number, 0.125);
}

TEST_F(LocaleTest, CLibraryPathsUnderRealCommaLocaleIfAvailable) {
  const std::string name = try_comma_c_locale();
  if (name.empty()) {
    GTEST_SKIP() << "no comma-decimal OS locale installed; from_chars "
                    "paths are locale-free by construction";
  }
  // LC_NUMERIC is now comma-decimal: pre-fix strtod call sites would
  // stop at '.' and truncate.
  const Polygon back = parse_wkt("POLYGON ((0.5 0.5, 9.25 0.75, 4.125 8.625, 0.5 0.5))");
  EXPECT_EQ(back.rings()[0][1].x, 9.25);
  const PolygonSet set = parse_geojson(
      R"({"type":"FeatureCollection","features":[{"type":"Feature",)"
      R"("properties":{"name":"z"},"geometry":{"type":"Polygon",)"
      R"("coordinates":[[[0.5,0.5],[9.25,0.75],[4.125,8.625],[0.5,0.5]]]}}]})");
  EXPECT_EQ(set[0].rings()[0][2].y, 8.625);
  const obs::JsonValue v = obs::parse_json("[1.5]");
  EXPECT_EQ(v.arr.at(0).number, 1.5);
}

}  // namespace
}  // namespace zh
