// Zone rasterization, PPM rendering and the .bq compressed container.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "core/rasterize.hpp"
#include "data/dem_synth.hpp"
#include "geom/pip.hpp"
#include "io/bq_file.hpp"
#include "io/render.hpp"
#include "test_util.hpp"

namespace zh {
namespace {

TEST(Rasterize, MatchesPerCellPip) {
  const GeoTransform t(0.0, 8.0, 0.1, 0.1);
  const PolygonSet zones = test::random_polygon_set(
      21, GeoBox{0.5, 0.5, 7.5, 7.5}, 6, /*holes=*/true);
  const Raster<PolygonId> ids = rasterize_zones(zones, 80, 80, t);

  for (std::int64_t r = 0; r < 80; ++r) {
    for (std::int64_t c = 0; c < 80; ++c) {
      const GeoPoint p = t.cell_center(r, c);
      // Expected: highest id whose polygon contains the center.
      PolygonId expect = kInvalidPolygon;
      for (PolygonId id = 0; id < zones.size(); ++id) {
        if (point_in_polygon(zones[id], p)) expect = id;
      }
      ASSERT_EQ(ids.at(r, c), expect) << "cell " << r << "," << c;
    }
  }
}

TEST(Rasterize, EmptyInputs) {
  const Raster<PolygonId> a =
      rasterize_zones(PolygonSet{}, 10, 10, GeoTransform());
  for (const PolygonId v : a.cells()) EXPECT_EQ(v, kInvalidPolygon);
  const Raster<PolygonId> b =
      rasterize_zones(PolygonSet{}, 0, 0, GeoTransform());
  EXPECT_EQ(b.cell_count(), 0);
}

TEST(Render, ElevationImageShapeAndDecimation) {
  const DemRaster dem = generate_dem(300, 500, GeoTransform(0, 3, 0.01,
                                                            0.01));
  const RgbImage img = render_elevation(dem, 100);
  EXPECT_LE(img.width, 100);
  EXPECT_LE(img.height, 100);
  EXPECT_EQ(img.pixels.size(),
            static_cast<std::size_t>(img.width * img.height * 3));
  // Full-size when it fits.
  const RgbImage full = render_elevation(dem, 1000);
  EXPECT_EQ(full.width, 500);
  EXPECT_EQ(full.height, 300);
}

TEST(Render, NodataRendersAsWater) {
  DemRaster dem(4, 4);
  for (CellValue& v : dem.cells()) v = 100;
  dem.at(0, 0) = 9999;
  dem.set_nodata(CellValue{9999});
  const RgbImage img = render_elevation(dem, 10);
  EXPECT_EQ(img.pixels[0], 40);   // water blue r
  EXPECT_EQ(img.pixels[2], 150);  // water blue b
}

TEST(Render, ZoneColorsAreDeterministicAndDistinct) {
  Raster<PolygonId> zones(2, 2, GeoTransform(), kInvalidPolygon);
  zones.at(0, 0) = 1;
  zones.at(0, 1) = 1;
  zones.at(1, 0) = 2;
  const RgbImage a = render_zone_ids(zones);
  const RgbImage b = render_zone_ids(zones);
  EXPECT_EQ(a.pixels, b.pixels);
  // Same zone same color; different zones different colors here.
  EXPECT_EQ(a.pixels[0], a.pixels[3]);
  EXPECT_NE(std::vector<std::uint8_t>(a.pixels.begin(), a.pixels.begin() + 3),
            std::vector<std::uint8_t>(a.pixels.begin() + 6,
                                      a.pixels.begin() + 9));
  // kInvalidPolygon cell renders dark.
  EXPECT_LT(a.pixels[9 + 0], 64);
}

TEST(Render, ChoroplethRampOrdering) {
  Raster<PolygonId> zones(1, 3, GeoTransform(), kInvalidPolygon);
  zones.at(0, 0) = 0;
  zones.at(0, 1) = 1;
  zones.at(0, 2) = 2;
  const RgbImage img = render_choropleth(zones, {0.0, 0.5, 1.0});
  // Red channel increases with the value, blue decreases.
  EXPECT_LT(img.pixels[0], img.pixels[3]);
  EXPECT_LT(img.pixels[3], img.pixels[6]);
  EXPECT_GT(img.pixels[2], img.pixels[8]);
}

class BqFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("zh_bq_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(BqFileTest, RoundTripPreservesEverything) {
  const DemRaster dem = generate_dem(
      130, 170, GeoTransform(-101.5, 43.25, 0.01, 0.01), {.seed = 3});
  const BqCompressedRaster orig = BqCompressedRaster::encode(dem, 48);
  const std::string path = (dir_ / "terrain.bq").string();
  write_bq(path, orig);
  const BqCompressedRaster back = read_bq(path);

  EXPECT_EQ(back.tiling(), orig.tiling());
  EXPECT_EQ(back.transform(), orig.transform());
  EXPECT_EQ(back.compressed_bytes(), orig.compressed_bytes());
  const DemRaster decoded = back.decode_all();
  EXPECT_TRUE(std::equal(decoded.cells().begin(), decoded.cells().end(),
                         dem.cells().begin()));
}

TEST_F(BqFileTest, PpmRoundTripHeader) {
  RgbImage img(3, 2);
  img.set(2, 1, 9, 8, 7);
  const std::string path = (dir_ / "img.ppm").string();
  write_ppm(path, img);
  std::ifstream is(path, std::ios::binary);
  std::string magic;
  int w = 0;
  int h = 0;
  int maxv = 0;
  is >> magic >> w >> h >> maxv;
  EXPECT_EQ(magic, "P6");
  EXPECT_EQ(w, 3);
  EXPECT_EQ(h, 2);
  EXPECT_EQ(maxv, 255);
  is.get();  // single whitespace after header
  std::vector<char> data(6 * 3);
  is.read(data.data(), static_cast<std::streamsize>(data.size()));
  EXPECT_TRUE(is.good());
  EXPECT_EQ(static_cast<std::uint8_t>(data[15]), 9);
}

TEST_F(BqFileTest, CorruptFilesThrow) {
  EXPECT_THROW(read_bq((dir_ / "missing.bq").string()), IoError);
  {
    std::ofstream os((dir_ / "bad.bq").string(), std::ios::binary);
    os << "NOPE";
  }
  EXPECT_THROW(read_bq((dir_ / "bad.bq").string()), IoError);

  // Truncate a valid file mid-payload.
  const DemRaster dem = generate_dem(64, 64, GeoTransform(0, 1, 0.01,
                                                          0.01));
  const std::string path = (dir_ / "trunc.bq").string();
  write_bq(path, BqCompressedRaster::encode(dem, 32));
  std::filesystem::resize_file(
      path, std::filesystem::file_size(path) - 10);
  EXPECT_THROW(read_bq(path), IoError);
}

}  // namespace
}  // namespace zh
