# Empty dependencies file for zh_grid.
# This may be replaced when dependencies are built.
