file(REMOVE_RECURSE
  "libzh_grid.a"
)
