
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/grid/pyramid.cpp" "src/grid/CMakeFiles/zh_grid.dir/pyramid.cpp.o" "gcc" "src/grid/CMakeFiles/zh_grid.dir/pyramid.cpp.o.d"
  "/root/repo/src/grid/terrain.cpp" "src/grid/CMakeFiles/zh_grid.dir/terrain.cpp.o" "gcc" "src/grid/CMakeFiles/zh_grid.dir/terrain.cpp.o.d"
  "/root/repo/src/grid/tiling.cpp" "src/grid/CMakeFiles/zh_grid.dir/tiling.cpp.o" "gcc" "src/grid/CMakeFiles/zh_grid.dir/tiling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/zh_common.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/zh_device.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
