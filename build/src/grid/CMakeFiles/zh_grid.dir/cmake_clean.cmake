file(REMOVE_RECURSE
  "CMakeFiles/zh_grid.dir/pyramid.cpp.o"
  "CMakeFiles/zh_grid.dir/pyramid.cpp.o.d"
  "CMakeFiles/zh_grid.dir/terrain.cpp.o"
  "CMakeFiles/zh_grid.dir/terrain.cpp.o.d"
  "CMakeFiles/zh_grid.dir/tiling.cpp.o"
  "CMakeFiles/zh_grid.dir/tiling.cpp.o.d"
  "libzh_grid.a"
  "libzh_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zh_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
