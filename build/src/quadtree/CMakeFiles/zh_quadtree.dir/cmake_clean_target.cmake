file(REMOVE_RECURSE
  "libzh_quadtree.a"
)
