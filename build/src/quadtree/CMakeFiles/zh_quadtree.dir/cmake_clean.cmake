file(REMOVE_RECURSE
  "CMakeFiles/zh_quadtree.dir/qt_step1.cpp.o"
  "CMakeFiles/zh_quadtree.dir/qt_step1.cpp.o.d"
  "CMakeFiles/zh_quadtree.dir/region_quadtree.cpp.o"
  "CMakeFiles/zh_quadtree.dir/region_quadtree.cpp.o.d"
  "libzh_quadtree.a"
  "libzh_quadtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zh_quadtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
