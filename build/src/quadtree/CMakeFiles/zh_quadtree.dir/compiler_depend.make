# Empty compiler generated dependencies file for zh_quadtree.
# This may be replaced when dependencies are built.
