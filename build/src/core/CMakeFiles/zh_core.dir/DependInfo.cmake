
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baseline.cpp" "src/core/CMakeFiles/zh_core.dir/baseline.cpp.o" "gcc" "src/core/CMakeFiles/zh_core.dir/baseline.cpp.o.d"
  "/root/repo/src/core/cluster_driver.cpp" "src/core/CMakeFiles/zh_core.dir/cluster_driver.cpp.o" "gcc" "src/core/CMakeFiles/zh_core.dir/cluster_driver.cpp.o.d"
  "/root/repo/src/core/histogram.cpp" "src/core/CMakeFiles/zh_core.dir/histogram.cpp.o" "gcc" "src/core/CMakeFiles/zh_core.dir/histogram.cpp.o.d"
  "/root/repo/src/core/hybrid.cpp" "src/core/CMakeFiles/zh_core.dir/hybrid.cpp.o" "gcc" "src/core/CMakeFiles/zh_core.dir/hybrid.cpp.o.d"
  "/root/repo/src/core/lazy_pipeline.cpp" "src/core/CMakeFiles/zh_core.dir/lazy_pipeline.cpp.o" "gcc" "src/core/CMakeFiles/zh_core.dir/lazy_pipeline.cpp.o.d"
  "/root/repo/src/core/load_balance.cpp" "src/core/CMakeFiles/zh_core.dir/load_balance.cpp.o" "gcc" "src/core/CMakeFiles/zh_core.dir/load_balance.cpp.o.d"
  "/root/repo/src/core/multiband.cpp" "src/core/CMakeFiles/zh_core.dir/multiband.cpp.o" "gcc" "src/core/CMakeFiles/zh_core.dir/multiband.cpp.o.d"
  "/root/repo/src/core/perf_model.cpp" "src/core/CMakeFiles/zh_core.dir/perf_model.cpp.o" "gcc" "src/core/CMakeFiles/zh_core.dir/perf_model.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/zh_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/zh_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/point_zonal.cpp" "src/core/CMakeFiles/zh_core.dir/point_zonal.cpp.o" "gcc" "src/core/CMakeFiles/zh_core.dir/point_zonal.cpp.o.d"
  "/root/repo/src/core/rasterize.cpp" "src/core/CMakeFiles/zh_core.dir/rasterize.cpp.o" "gcc" "src/core/CMakeFiles/zh_core.dir/rasterize.cpp.o.d"
  "/root/repo/src/core/step1_tile_hist.cpp" "src/core/CMakeFiles/zh_core.dir/step1_tile_hist.cpp.o" "gcc" "src/core/CMakeFiles/zh_core.dir/step1_tile_hist.cpp.o.d"
  "/root/repo/src/core/step2_pairing.cpp" "src/core/CMakeFiles/zh_core.dir/step2_pairing.cpp.o" "gcc" "src/core/CMakeFiles/zh_core.dir/step2_pairing.cpp.o.d"
  "/root/repo/src/core/step3_aggregate.cpp" "src/core/CMakeFiles/zh_core.dir/step3_aggregate.cpp.o" "gcc" "src/core/CMakeFiles/zh_core.dir/step3_aggregate.cpp.o.d"
  "/root/repo/src/core/step4_refine.cpp" "src/core/CMakeFiles/zh_core.dir/step4_refine.cpp.o" "gcc" "src/core/CMakeFiles/zh_core.dir/step4_refine.cpp.o.d"
  "/root/repo/src/core/zonal_stats_op.cpp" "src/core/CMakeFiles/zh_core.dir/zonal_stats_op.cpp.o" "gcc" "src/core/CMakeFiles/zh_core.dir/zonal_stats_op.cpp.o.d"
  "/root/repo/src/core/zone_cluster.cpp" "src/core/CMakeFiles/zh_core.dir/zone_cluster.cpp.o" "gcc" "src/core/CMakeFiles/zh_core.dir/zone_cluster.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/zh_common.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/zh_device.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/zh_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/zh_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/bqtree/CMakeFiles/zh_bqtree.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/zh_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
