file(REMOVE_RECURSE
  "libzh_core.a"
)
