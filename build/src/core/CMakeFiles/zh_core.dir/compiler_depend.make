# Empty compiler generated dependencies file for zh_core.
# This may be replaced when dependencies are built.
