# Empty compiler generated dependencies file for zh_common.
# This may be replaced when dependencies are built.
