file(REMOVE_RECURSE
  "libzh_common.a"
)
