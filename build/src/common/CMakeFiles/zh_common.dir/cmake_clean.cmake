file(REMOVE_RECURSE
  "CMakeFiles/zh_common.dir/memory.cpp.o"
  "CMakeFiles/zh_common.dir/memory.cpp.o.d"
  "CMakeFiles/zh_common.dir/timer.cpp.o"
  "CMakeFiles/zh_common.dir/timer.cpp.o.d"
  "libzh_common.a"
  "libzh_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zh_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
