# Empty compiler generated dependencies file for zh_device.
# This may be replaced when dependencies are built.
