file(REMOVE_RECURSE
  "CMakeFiles/zh_device.dir/device.cpp.o"
  "CMakeFiles/zh_device.dir/device.cpp.o.d"
  "CMakeFiles/zh_device.dir/thread_pool.cpp.o"
  "CMakeFiles/zh_device.dir/thread_pool.cpp.o.d"
  "libzh_device.a"
  "libzh_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zh_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
