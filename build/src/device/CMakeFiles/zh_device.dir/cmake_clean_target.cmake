file(REMOVE_RECURSE
  "libzh_device.a"
)
