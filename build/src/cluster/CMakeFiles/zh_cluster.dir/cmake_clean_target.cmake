file(REMOVE_RECURSE
  "libzh_cluster.a"
)
