file(REMOVE_RECURSE
  "CMakeFiles/zh_cluster.dir/comm.cpp.o"
  "CMakeFiles/zh_cluster.dir/comm.cpp.o.d"
  "CMakeFiles/zh_cluster.dir/partition.cpp.o"
  "CMakeFiles/zh_cluster.dir/partition.cpp.o.d"
  "libzh_cluster.a"
  "libzh_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zh_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
