# Empty compiler generated dependencies file for zh_cluster.
# This may be replaced when dependencies are built.
