file(REMOVE_RECURSE
  "CMakeFiles/zh_io.dir/ascii_grid.cpp.o"
  "CMakeFiles/zh_io.dir/ascii_grid.cpp.o.d"
  "CMakeFiles/zh_io.dir/bq_file.cpp.o"
  "CMakeFiles/zh_io.dir/bq_file.cpp.o.d"
  "CMakeFiles/zh_io.dir/catalog.cpp.o"
  "CMakeFiles/zh_io.dir/catalog.cpp.o.d"
  "CMakeFiles/zh_io.dir/geojson.cpp.o"
  "CMakeFiles/zh_io.dir/geojson.cpp.o.d"
  "CMakeFiles/zh_io.dir/histogram_io.cpp.o"
  "CMakeFiles/zh_io.dir/histogram_io.cpp.o.d"
  "CMakeFiles/zh_io.dir/render.cpp.o"
  "CMakeFiles/zh_io.dir/render.cpp.o.d"
  "CMakeFiles/zh_io.dir/vector_io.cpp.o"
  "CMakeFiles/zh_io.dir/vector_io.cpp.o.d"
  "CMakeFiles/zh_io.dir/zgrid.cpp.o"
  "CMakeFiles/zh_io.dir/zgrid.cpp.o.d"
  "libzh_io.a"
  "libzh_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zh_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
