file(REMOVE_RECURSE
  "libzh_io.a"
)
