# Empty dependencies file for zh_io.
# This may be replaced when dependencies are built.
