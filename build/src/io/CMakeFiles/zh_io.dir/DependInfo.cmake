
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/ascii_grid.cpp" "src/io/CMakeFiles/zh_io.dir/ascii_grid.cpp.o" "gcc" "src/io/CMakeFiles/zh_io.dir/ascii_grid.cpp.o.d"
  "/root/repo/src/io/bq_file.cpp" "src/io/CMakeFiles/zh_io.dir/bq_file.cpp.o" "gcc" "src/io/CMakeFiles/zh_io.dir/bq_file.cpp.o.d"
  "/root/repo/src/io/catalog.cpp" "src/io/CMakeFiles/zh_io.dir/catalog.cpp.o" "gcc" "src/io/CMakeFiles/zh_io.dir/catalog.cpp.o.d"
  "/root/repo/src/io/geojson.cpp" "src/io/CMakeFiles/zh_io.dir/geojson.cpp.o" "gcc" "src/io/CMakeFiles/zh_io.dir/geojson.cpp.o.d"
  "/root/repo/src/io/histogram_io.cpp" "src/io/CMakeFiles/zh_io.dir/histogram_io.cpp.o" "gcc" "src/io/CMakeFiles/zh_io.dir/histogram_io.cpp.o.d"
  "/root/repo/src/io/render.cpp" "src/io/CMakeFiles/zh_io.dir/render.cpp.o" "gcc" "src/io/CMakeFiles/zh_io.dir/render.cpp.o.d"
  "/root/repo/src/io/vector_io.cpp" "src/io/CMakeFiles/zh_io.dir/vector_io.cpp.o" "gcc" "src/io/CMakeFiles/zh_io.dir/vector_io.cpp.o.d"
  "/root/repo/src/io/zgrid.cpp" "src/io/CMakeFiles/zh_io.dir/zgrid.cpp.o" "gcc" "src/io/CMakeFiles/zh_io.dir/zgrid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/zh_common.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/zh_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/zh_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/bqtree/CMakeFiles/zh_bqtree.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/zh_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/zh_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/zh_device.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
