file(REMOVE_RECURSE
  "libzh_bqtree.a"
)
