# Empty dependencies file for zh_bqtree.
# This may be replaced when dependencies are built.
