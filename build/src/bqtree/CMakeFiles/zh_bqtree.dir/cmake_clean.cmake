file(REMOVE_RECURSE
  "CMakeFiles/zh_bqtree.dir/bqtree.cpp.o"
  "CMakeFiles/zh_bqtree.dir/bqtree.cpp.o.d"
  "CMakeFiles/zh_bqtree.dir/compressed_raster.cpp.o"
  "CMakeFiles/zh_bqtree.dir/compressed_raster.cpp.o.d"
  "libzh_bqtree.a"
  "libzh_bqtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zh_bqtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
