
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/classify.cpp" "src/geom/CMakeFiles/zh_geom.dir/classify.cpp.o" "gcc" "src/geom/CMakeFiles/zh_geom.dir/classify.cpp.o.d"
  "/root/repo/src/geom/pip.cpp" "src/geom/CMakeFiles/zh_geom.dir/pip.cpp.o" "gcc" "src/geom/CMakeFiles/zh_geom.dir/pip.cpp.o.d"
  "/root/repo/src/geom/polygon.cpp" "src/geom/CMakeFiles/zh_geom.dir/polygon.cpp.o" "gcc" "src/geom/CMakeFiles/zh_geom.dir/polygon.cpp.o.d"
  "/root/repo/src/geom/simplify.cpp" "src/geom/CMakeFiles/zh_geom.dir/simplify.cpp.o" "gcc" "src/geom/CMakeFiles/zh_geom.dir/simplify.cpp.o.d"
  "/root/repo/src/geom/soa.cpp" "src/geom/CMakeFiles/zh_geom.dir/soa.cpp.o" "gcc" "src/geom/CMakeFiles/zh_geom.dir/soa.cpp.o.d"
  "/root/repo/src/geom/validate.cpp" "src/geom/CMakeFiles/zh_geom.dir/validate.cpp.o" "gcc" "src/geom/CMakeFiles/zh_geom.dir/validate.cpp.o.d"
  "/root/repo/src/geom/wkt.cpp" "src/geom/CMakeFiles/zh_geom.dir/wkt.cpp.o" "gcc" "src/geom/CMakeFiles/zh_geom.dir/wkt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/zh_common.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/zh_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/zh_device.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
