# Empty dependencies file for zh_geom.
# This may be replaced when dependencies are built.
