file(REMOVE_RECURSE
  "CMakeFiles/zh_geom.dir/classify.cpp.o"
  "CMakeFiles/zh_geom.dir/classify.cpp.o.d"
  "CMakeFiles/zh_geom.dir/pip.cpp.o"
  "CMakeFiles/zh_geom.dir/pip.cpp.o.d"
  "CMakeFiles/zh_geom.dir/polygon.cpp.o"
  "CMakeFiles/zh_geom.dir/polygon.cpp.o.d"
  "CMakeFiles/zh_geom.dir/simplify.cpp.o"
  "CMakeFiles/zh_geom.dir/simplify.cpp.o.d"
  "CMakeFiles/zh_geom.dir/soa.cpp.o"
  "CMakeFiles/zh_geom.dir/soa.cpp.o.d"
  "CMakeFiles/zh_geom.dir/validate.cpp.o"
  "CMakeFiles/zh_geom.dir/validate.cpp.o.d"
  "CMakeFiles/zh_geom.dir/wkt.cpp.o"
  "CMakeFiles/zh_geom.dir/wkt.cpp.o.d"
  "libzh_geom.a"
  "libzh_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zh_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
