file(REMOVE_RECURSE
  "libzh_geom.a"
)
