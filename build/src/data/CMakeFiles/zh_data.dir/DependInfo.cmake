
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/conus.cpp" "src/data/CMakeFiles/zh_data.dir/conus.cpp.o" "gcc" "src/data/CMakeFiles/zh_data.dir/conus.cpp.o.d"
  "/root/repo/src/data/county_synth.cpp" "src/data/CMakeFiles/zh_data.dir/county_synth.cpp.o" "gcc" "src/data/CMakeFiles/zh_data.dir/county_synth.cpp.o.d"
  "/root/repo/src/data/dem_synth.cpp" "src/data/CMakeFiles/zh_data.dir/dem_synth.cpp.o" "gcc" "src/data/CMakeFiles/zh_data.dir/dem_synth.cpp.o.d"
  "/root/repo/src/data/points_synth.cpp" "src/data/CMakeFiles/zh_data.dir/points_synth.cpp.o" "gcc" "src/data/CMakeFiles/zh_data.dir/points_synth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/zh_common.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/zh_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/zh_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/zh_device.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
