file(REMOVE_RECURSE
  "libzh_data.a"
)
