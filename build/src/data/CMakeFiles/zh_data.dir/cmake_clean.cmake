file(REMOVE_RECURSE
  "CMakeFiles/zh_data.dir/conus.cpp.o"
  "CMakeFiles/zh_data.dir/conus.cpp.o.d"
  "CMakeFiles/zh_data.dir/county_synth.cpp.o"
  "CMakeFiles/zh_data.dir/county_synth.cpp.o.d"
  "CMakeFiles/zh_data.dir/dem_synth.cpp.o"
  "CMakeFiles/zh_data.dir/dem_synth.cpp.o.d"
  "CMakeFiles/zh_data.dir/points_synth.cpp.o"
  "CMakeFiles/zh_data.dir/points_synth.cpp.o.d"
  "libzh_data.a"
  "libzh_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zh_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
