# Empty dependencies file for zh_data.
# This may be replaced when dependencies are built.
