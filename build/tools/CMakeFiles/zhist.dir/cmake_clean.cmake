file(REMOVE_RECURSE
  "CMakeFiles/zhist.dir/zhist.cpp.o"
  "CMakeFiles/zhist.dir/zhist.cpp.o.d"
  "zhist"
  "zhist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zhist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
