# Empty dependencies file for zhist.
# This may be replaced when dependencies are built.
