# Empty compiler generated dependencies file for multiband_series.
# This may be replaced when dependencies are built.
