file(REMOVE_RECURSE
  "CMakeFiles/multiband_series.dir/multiband_series.cpp.o"
  "CMakeFiles/multiband_series.dir/multiband_series.cpp.o.d"
  "multiband_series"
  "multiband_series.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiband_series.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
