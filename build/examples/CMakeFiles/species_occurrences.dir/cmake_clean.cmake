file(REMOVE_RECURSE
  "CMakeFiles/species_occurrences.dir/species_occurrences.cpp.o"
  "CMakeFiles/species_occurrences.dir/species_occurrences.cpp.o.d"
  "species_occurrences"
  "species_occurrences.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/species_occurrences.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
