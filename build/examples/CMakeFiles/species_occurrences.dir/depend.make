# Empty dependencies file for species_occurrences.
# This may be replaced when dependencies are built.
