file(REMOVE_RECURSE
  "CMakeFiles/conus_counties.dir/conus_counties.cpp.o"
  "CMakeFiles/conus_counties.dir/conus_counties.cpp.o.d"
  "conus_counties"
  "conus_counties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conus_counties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
