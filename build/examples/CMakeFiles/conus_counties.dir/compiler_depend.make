# Empty compiler generated dependencies file for conus_counties.
# This may be replaced when dependencies are built.
