
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/conus_counties.cpp" "examples/CMakeFiles/conus_counties.dir/conus_counties.cpp.o" "gcc" "examples/CMakeFiles/conus_counties.dir/conus_counties.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/zh_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/zh_data.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/zh_io.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/zh_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/zh_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/bqtree/CMakeFiles/zh_bqtree.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/zh_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/zh_device.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/zh_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
