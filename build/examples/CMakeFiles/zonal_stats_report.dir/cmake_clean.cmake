file(REMOVE_RECURSE
  "CMakeFiles/zonal_stats_report.dir/zonal_stats_report.cpp.o"
  "CMakeFiles/zonal_stats_report.dir/zonal_stats_report.cpp.o.d"
  "zonal_stats_report"
  "zonal_stats_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zonal_stats_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
