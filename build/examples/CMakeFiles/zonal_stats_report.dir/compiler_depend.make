# Empty compiler generated dependencies file for zonal_stats_report.
# This may be replaced when dependencies are built.
