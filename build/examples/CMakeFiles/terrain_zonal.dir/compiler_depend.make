# Empty compiler generated dependencies file for terrain_zonal.
# This may be replaced when dependencies are built.
