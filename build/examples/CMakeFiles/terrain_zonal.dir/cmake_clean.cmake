file(REMOVE_RECURSE
  "CMakeFiles/terrain_zonal.dir/terrain_zonal.cpp.o"
  "CMakeFiles/terrain_zonal.dir/terrain_zonal.cpp.o.d"
  "terrain_zonal"
  "terrain_zonal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/terrain_zonal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
