file(REMOVE_RECURSE
  "CMakeFiles/render_maps.dir/render_maps.cpp.o"
  "CMakeFiles/render_maps.dir/render_maps.cpp.o.d"
  "render_maps"
  "render_maps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/render_maps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
