# Empty dependencies file for render_maps.
# This may be replaced when dependencies are built.
