# Empty compiler generated dependencies file for bench_bqtree.
# This may be replaced when dependencies are built.
