file(REMOVE_RECURSE
  "CMakeFiles/bench_bqtree.dir/bench_bqtree.cpp.o"
  "CMakeFiles/bench_bqtree.dir/bench_bqtree.cpp.o.d"
  "bench_bqtree"
  "bench_bqtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bqtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
