file(REMOVE_RECURSE
  "CMakeFiles/bench_quadtree.dir/bench_quadtree.cpp.o"
  "CMakeFiles/bench_quadtree.dir/bench_quadtree.cpp.o.d"
  "bench_quadtree"
  "bench_quadtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_quadtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
