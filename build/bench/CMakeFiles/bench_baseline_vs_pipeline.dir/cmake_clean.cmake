file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_vs_pipeline.dir/bench_baseline_vs_pipeline.cpp.o"
  "CMakeFiles/bench_baseline_vs_pipeline.dir/bench_baseline_vs_pipeline.cpp.o.d"
  "bench_baseline_vs_pipeline"
  "bench_baseline_vs_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_vs_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
