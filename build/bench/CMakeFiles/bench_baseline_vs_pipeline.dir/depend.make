# Empty dependencies file for bench_baseline_vs_pipeline.
# This may be replaced when dependencies are built.
