file(REMOVE_RECURSE
  "CMakeFiles/bench_multiband.dir/bench_multiband.cpp.o"
  "CMakeFiles/bench_multiband.dir/bench_multiband.cpp.o.d"
  "bench_multiband"
  "bench_multiband.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multiband.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
