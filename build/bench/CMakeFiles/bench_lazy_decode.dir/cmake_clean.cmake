file(REMOVE_RECURSE
  "CMakeFiles/bench_lazy_decode.dir/bench_lazy_decode.cpp.o"
  "CMakeFiles/bench_lazy_decode.dir/bench_lazy_decode.cpp.o.d"
  "bench_lazy_decode"
  "bench_lazy_decode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lazy_decode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
