# Empty dependencies file for bench_lazy_decode.
# This may be replaced when dependencies are built.
