# Empty compiler generated dependencies file for bench_micro_pip.
# This may be replaced when dependencies are built.
