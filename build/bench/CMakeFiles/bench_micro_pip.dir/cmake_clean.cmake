file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_pip.dir/bench_micro_pip.cpp.o"
  "CMakeFiles/bench_micro_pip.dir/bench_micro_pip.cpp.o.d"
  "bench_micro_pip"
  "bench_micro_pip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_pip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
