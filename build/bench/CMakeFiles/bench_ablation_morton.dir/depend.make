# Empty dependencies file for bench_ablation_morton.
# This may be replaced when dependencies are built.
