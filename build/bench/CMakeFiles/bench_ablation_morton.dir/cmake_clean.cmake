file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_morton.dir/bench_ablation_morton.cpp.o"
  "CMakeFiles/bench_ablation_morton.dir/bench_ablation_morton.cpp.o.d"
  "bench_ablation_morton"
  "bench_ablation_morton.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_morton.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
