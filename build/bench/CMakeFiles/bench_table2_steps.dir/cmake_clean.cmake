file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_steps.dir/bench_table2_steps.cpp.o"
  "CMakeFiles/bench_table2_steps.dir/bench_table2_steps.cpp.o.d"
  "bench_table2_steps"
  "bench_table2_steps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_steps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
