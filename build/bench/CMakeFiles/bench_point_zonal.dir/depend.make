# Empty dependencies file for bench_point_zonal.
# This may be replaced when dependencies are built.
