file(REMOVE_RECURSE
  "CMakeFiles/bench_point_zonal.dir/bench_point_zonal.cpp.o"
  "CMakeFiles/bench_point_zonal.dir/bench_point_zonal.cpp.o.d"
  "bench_point_zonal"
  "bench_point_zonal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_point_zonal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
