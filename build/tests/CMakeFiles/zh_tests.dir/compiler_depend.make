# Empty compiler generated dependencies file for zh_tests.
# This may be replaced when dependencies are built.
