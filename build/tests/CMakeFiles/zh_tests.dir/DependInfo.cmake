
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_baseline.cpp" "tests/CMakeFiles/zh_tests.dir/test_baseline.cpp.o" "gcc" "tests/CMakeFiles/zh_tests.dir/test_baseline.cpp.o.d"
  "/root/repo/tests/test_bqtree.cpp" "tests/CMakeFiles/zh_tests.dir/test_bqtree.cpp.o" "gcc" "tests/CMakeFiles/zh_tests.dir/test_bqtree.cpp.o.d"
  "/root/repo/tests/test_catalog.cpp" "tests/CMakeFiles/zh_tests.dir/test_catalog.cpp.o" "gcc" "tests/CMakeFiles/zh_tests.dir/test_catalog.cpp.o.d"
  "/root/repo/tests/test_classify.cpp" "tests/CMakeFiles/zh_tests.dir/test_classify.cpp.o" "gcc" "tests/CMakeFiles/zh_tests.dir/test_classify.cpp.o.d"
  "/root/repo/tests/test_cluster.cpp" "tests/CMakeFiles/zh_tests.dir/test_cluster.cpp.o" "gcc" "tests/CMakeFiles/zh_tests.dir/test_cluster.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/zh_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/zh_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_data.cpp" "tests/CMakeFiles/zh_tests.dir/test_data.cpp.o" "gcc" "tests/CMakeFiles/zh_tests.dir/test_data.cpp.o.d"
  "/root/repo/tests/test_device.cpp" "tests/CMakeFiles/zh_tests.dir/test_device.cpp.o" "gcc" "tests/CMakeFiles/zh_tests.dir/test_device.cpp.o.d"
  "/root/repo/tests/test_geom_edge_cases.cpp" "tests/CMakeFiles/zh_tests.dir/test_geom_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/zh_tests.dir/test_geom_edge_cases.cpp.o.d"
  "/root/repo/tests/test_grid.cpp" "tests/CMakeFiles/zh_tests.dir/test_grid.cpp.o" "gcc" "tests/CMakeFiles/zh_tests.dir/test_grid.cpp.o.d"
  "/root/repo/tests/test_histogram.cpp" "tests/CMakeFiles/zh_tests.dir/test_histogram.cpp.o" "gcc" "tests/CMakeFiles/zh_tests.dir/test_histogram.cpp.o.d"
  "/root/repo/tests/test_hybrid_simplify.cpp" "tests/CMakeFiles/zh_tests.dir/test_hybrid_simplify.cpp.o" "gcc" "tests/CMakeFiles/zh_tests.dir/test_hybrid_simplify.cpp.o.d"
  "/root/repo/tests/test_io.cpp" "tests/CMakeFiles/zh_tests.dir/test_io.cpp.o" "gcc" "tests/CMakeFiles/zh_tests.dir/test_io.cpp.o.d"
  "/root/repo/tests/test_lazy_pipeline.cpp" "tests/CMakeFiles/zh_tests.dir/test_lazy_pipeline.cpp.o" "gcc" "tests/CMakeFiles/zh_tests.dir/test_lazy_pipeline.cpp.o.d"
  "/root/repo/tests/test_load_balance.cpp" "tests/CMakeFiles/zh_tests.dir/test_load_balance.cpp.o" "gcc" "tests/CMakeFiles/zh_tests.dir/test_load_balance.cpp.o.d"
  "/root/repo/tests/test_morton.cpp" "tests/CMakeFiles/zh_tests.dir/test_morton.cpp.o" "gcc" "tests/CMakeFiles/zh_tests.dir/test_morton.cpp.o.d"
  "/root/repo/tests/test_multiband.cpp" "tests/CMakeFiles/zh_tests.dir/test_multiband.cpp.o" "gcc" "tests/CMakeFiles/zh_tests.dir/test_multiband.cpp.o.d"
  "/root/repo/tests/test_partitioned_fuzz.cpp" "tests/CMakeFiles/zh_tests.dir/test_partitioned_fuzz.cpp.o" "gcc" "tests/CMakeFiles/zh_tests.dir/test_partitioned_fuzz.cpp.o.d"
  "/root/repo/tests/test_perf_model.cpp" "tests/CMakeFiles/zh_tests.dir/test_perf_model.cpp.o" "gcc" "tests/CMakeFiles/zh_tests.dir/test_perf_model.cpp.o.d"
  "/root/repo/tests/test_pip.cpp" "tests/CMakeFiles/zh_tests.dir/test_pip.cpp.o" "gcc" "tests/CMakeFiles/zh_tests.dir/test_pip.cpp.o.d"
  "/root/repo/tests/test_pipeline.cpp" "tests/CMakeFiles/zh_tests.dir/test_pipeline.cpp.o" "gcc" "tests/CMakeFiles/zh_tests.dir/test_pipeline.cpp.o.d"
  "/root/repo/tests/test_point_zonal.cpp" "tests/CMakeFiles/zh_tests.dir/test_point_zonal.cpp.o" "gcc" "tests/CMakeFiles/zh_tests.dir/test_point_zonal.cpp.o.d"
  "/root/repo/tests/test_polygon.cpp" "tests/CMakeFiles/zh_tests.dir/test_polygon.cpp.o" "gcc" "tests/CMakeFiles/zh_tests.dir/test_polygon.cpp.o.d"
  "/root/repo/tests/test_primitives.cpp" "tests/CMakeFiles/zh_tests.dir/test_primitives.cpp.o" "gcc" "tests/CMakeFiles/zh_tests.dir/test_primitives.cpp.o.d"
  "/root/repo/tests/test_pyramid.cpp" "tests/CMakeFiles/zh_tests.dir/test_pyramid.cpp.o" "gcc" "tests/CMakeFiles/zh_tests.dir/test_pyramid.cpp.o.d"
  "/root/repo/tests/test_quadtree.cpp" "tests/CMakeFiles/zh_tests.dir/test_quadtree.cpp.o" "gcc" "tests/CMakeFiles/zh_tests.dir/test_quadtree.cpp.o.d"
  "/root/repo/tests/test_render_io.cpp" "tests/CMakeFiles/zh_tests.dir/test_render_io.cpp.o" "gcc" "tests/CMakeFiles/zh_tests.dir/test_render_io.cpp.o.d"
  "/root/repo/tests/test_step1.cpp" "tests/CMakeFiles/zh_tests.dir/test_step1.cpp.o" "gcc" "tests/CMakeFiles/zh_tests.dir/test_step1.cpp.o.d"
  "/root/repo/tests/test_step2.cpp" "tests/CMakeFiles/zh_tests.dir/test_step2.cpp.o" "gcc" "tests/CMakeFiles/zh_tests.dir/test_step2.cpp.o.d"
  "/root/repo/tests/test_step3_4.cpp" "tests/CMakeFiles/zh_tests.dir/test_step3_4.cpp.o" "gcc" "tests/CMakeFiles/zh_tests.dir/test_step3_4.cpp.o.d"
  "/root/repo/tests/test_stress.cpp" "tests/CMakeFiles/zh_tests.dir/test_stress.cpp.o" "gcc" "tests/CMakeFiles/zh_tests.dir/test_stress.cpp.o.d"
  "/root/repo/tests/test_terrain_geojson.cpp" "tests/CMakeFiles/zh_tests.dir/test_terrain_geojson.cpp.o" "gcc" "tests/CMakeFiles/zh_tests.dir/test_terrain_geojson.cpp.o.d"
  "/root/repo/tests/test_thread_pool.cpp" "tests/CMakeFiles/zh_tests.dir/test_thread_pool.cpp.o" "gcc" "tests/CMakeFiles/zh_tests.dir/test_thread_pool.cpp.o.d"
  "/root/repo/tests/test_validate.cpp" "tests/CMakeFiles/zh_tests.dir/test_validate.cpp.o" "gcc" "tests/CMakeFiles/zh_tests.dir/test_validate.cpp.o.d"
  "/root/repo/tests/test_wkt.cpp" "tests/CMakeFiles/zh_tests.dir/test_wkt.cpp.o" "gcc" "tests/CMakeFiles/zh_tests.dir/test_wkt.cpp.o.d"
  "/root/repo/tests/test_zonal_stats_op.cpp" "tests/CMakeFiles/zh_tests.dir/test_zonal_stats_op.cpp.o" "gcc" "tests/CMakeFiles/zh_tests.dir/test_zonal_stats_op.cpp.o.d"
  "/root/repo/tests/test_zone_cluster.cpp" "tests/CMakeFiles/zh_tests.dir/test_zone_cluster.cpp.o" "gcc" "tests/CMakeFiles/zh_tests.dir/test_zone_cluster.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/quadtree/CMakeFiles/zh_quadtree.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/zh_core.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/zh_io.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/zh_data.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/zh_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/bqtree/CMakeFiles/zh_bqtree.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/zh_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/zh_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/zh_device.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/zh_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
