// Visualization hook (the paper's future-work item: "integrate the
// GPU-accelerated geospatial operation with visualization modules"):
// renders the workload and the zonal results as PPM images --
//   terrain.ppm     hypsometric elevation map
//   zones.ppm       categorical zone map (rasterized polygons)
//   mean_elev.ppm   choropleth of per-zone mean elevation from the
//                   zonal-histogram pipeline
#include <cstdio>
#include <filesystem>

#include "zh.hpp"

int main() {
  using namespace zh;
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "zh_render_example";
  std::filesystem::create_directories(dir);

  const GeoTransform transform(-104.0, 42.0, 0.01, 0.01);
  const DemRaster dem = generate_dem(600, 900, transform, {.seed = 21});
  CountyParams cp;
  cp.grid_x = 9;
  cp.grid_y = 6;
  cp.hole_every = 11;
  const GeoBox ext = dem.extent();
  const PolygonSet zones = generate_counties(
      GeoBox{ext.min_x - 0.05, ext.min_y - 0.05, ext.max_x + 0.05,
             ext.max_y + 0.05},
      cp);

  // Zonal histograms -> per-zone mean elevation.
  Device device;
  const ZonalPipeline pipeline(device, {.tile_size = 50, .bins = 5000});
  const ZonalResult result = pipeline.run(dem, zones);
  std::vector<double> mean_elev(zones.size());
  for (PolygonId z = 0; z < zones.size(); ++z) {
    mean_elev[z] = stats_from_histogram(result.per_polygon.of(z)).mean;
  }

  // Rasterize the zone layer once; both categorical and choropleth maps
  // derive from it.
  const Raster<PolygonId> zone_ids =
      rasterize_zones(zones, dem.rows(), dem.cols(), transform);

  const std::string terrain = (dir / "terrain.ppm").string();
  const std::string zonemap = (dir / "zones.ppm").string();
  const std::string choropleth = (dir / "mean_elev.ppm").string();
  write_ppm(terrain, render_elevation(dem));
  write_ppm(zonemap, render_zone_ids(zone_ids));
  write_ppm(choropleth, render_choropleth(zone_ids, mean_elev));

  std::printf("wrote:\n  %s\n  %s\n  %s\n", terrain.c_str(),
              zonemap.c_str(), choropleth.c_str());
  std::printf("\nper-zone mean elevation range: %.1f .. %.1f m over %zu "
              "zones\n",
              *std::min_element(mean_elev.begin(), mean_elev.end()),
              *std::max_element(mean_elev.begin(), mean_elev.end()),
              zones.size());
  return 0;
}
