// Quickstart: the smallest end-to-end zonal-histogramming program.
//
//   1. make (or load) a raster,
//   2. make (or load) a polygon layer,
//   3. run the 4-step pipeline on a device,
//   4. read per-zone histograms and classic zonal statistics.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "zh.hpp"

int main() {
  using namespace zh;

  // A 1200x1200 synthetic DEM over a 5x5-degree box at ~150 m resolution
  // (elevations 0..4999, like SRTM over mountainous terrain).
  const GeoTransform transform(-110.0, 45.0, 5.0 / 1200, 5.0 / 1200);
  const DemRaster dem = generate_dem(1200, 1200, transform,
                                     {.seed = 2024});

  // Three zones of interest, defined in WKT like any GIS layer.
  PolygonSet zones;
  zones.add(parse_wkt("POLYGON ((-109.5 41.0, -106.5 41.0, -106.5 43.5, "
                      "-109.5 43.5, -109.5 41.0))"),
            "big-rectangle");
  zones.add(parse_wkt("POLYGON ((-108 43.2, -106.2 44.8, -109.4 44.6, "
                      "-108 43.2))"),
            "triangle");
  // A zone with a hole: the ring-separator machinery handles it exactly.
  zones.add(parse_wkt("POLYGON ((-110 40.2, -108.2 40.2, -108.2 41.8, "
                      "-110 41.8, -110 40.2), (-109.4 40.6, -108.8 40.6, "
                      "-108.8 41.2, -109.4 41.2, -109.4 40.6))"),
            "donut");

  // The virtual device runs the paper's CUDA-style kernels on the host;
  // tile size and bin count mirror the paper's CONUS setting.
  Device device;
  const ZonalPipeline pipeline(device, {.tile_size = 120, .bins = 5000});
  const ZonalResult result = pipeline.run(dem, zones);

  std::printf("%-16s %12s %7s %7s %9s %9s\n", "zone", "cells", "min",
              "max", "mean", "stddev");
  for (PolygonId id = 0; id < zones.size(); ++id) {
    const ZonalStats s = stats_from_histogram(result.per_polygon.of(id));
    std::printf("%-16s %12llu %7u %7u %9.1f %9.1f\n",
                zones.name(id).c_str(),
                static_cast<unsigned long long>(s.count), s.min, s.max,
                s.mean, s.stddev);
  }

  std::printf("\nper-step seconds:");
  for (std::size_t s = 0; s < StepTimes::kSteps; ++s) {
    std::printf(" s%zu=%.3f", s, result.times.seconds[s]);
  }
  std::printf("  (tiles: %llu, boundary pairs: %llu)\n",
              static_cast<unsigned long long>(result.work.tiles_total),
              static_cast<unsigned long long>(result.work.pairs_intersect));

  // Histograms are feature vectors: compare two zones' terrain profiles.
  const auto d01 = histogram_l1_distance(result.per_polygon.of(0),
                                         result.per_polygon.of(1));
  std::printf("L1 distance between %s and %s histograms: %llu\n",
              zones.name(0).c_str(), zones.name(1).c_str(),
              static_cast<unsigned long long>(d01));
  return 0;
}
