// The paper's flagship experiment at laptop scale: zonal histogramming
// of county-style zones over the six Table-1 CONUS SRTM rasters,
// including BQ-Tree compression (Step 0) and an exactness check against
// the per-cell-PIP reference.
//
// Environment knobs: ZH_SCALE (default 60), ZH_ZONES (default 500),
// ZH_BINS (default 5000).
#include <cstdio>
#include <cstdlib>

#include "zh.hpp"

namespace {
int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return (v != nullptr && *v != '\0') ? std::atoi(v) : fallback;
}
}  // namespace

int main() {
  using namespace zh;
  const int scale = env_int("ZH_SCALE", 60);
  const int zones = env_int("ZH_ZONES", 500);
  const auto bins = static_cast<BinIndex>(env_int("ZH_BINS", 5000));
  const std::int64_t tile = conus::tile_size_cells(scale);

  std::printf("CONUS zonal histogramming at 1/%d scale: %lld cells, "
              "%d zones, %u bins, 0.1-degree tiles (%lld cells/edge)\n\n",
              scale, static_cast<long long>(conus::total_cells(scale)),
              zones, bins, static_cast<long long>(tile));

  const PolygonSet counties = conus::generate_county_layer(zones);
  std::printf("county layer: %zu polygons, %zu vertices (paper: 3109 "
              "counties, 87,097 vertices)\n\n",
              counties.size(), counties.vertex_count());

  Device device;
  const ZonalPipeline pipeline(device, {.tile_size = tile, .bins = bins});

  HistogramSet merged(counties.size(), bins);
  StepTimes times;
  Timer wall;
  ZonalWorkspace workspace;  // per-tile table reused across partitions

  // Process each raster through its Table-1 partition windows (as the
  // cluster does): partitions are tile-aligned, so per-partition results
  // merge additively, and the per-tile histogram table stays bounded the
  // way the 6 GB device memory bounds it in the paper.
  for (const conus::RasterSpec& spec : conus::table1()) {
    const DemRaster dem = conus::generate_raster(spec, scale);
    const auto windows = grid_partition(dem.rows(), dem.cols(),
                                        spec.part_rows, spec.part_cols,
                                        tile);
    double ratio_sum = 0.0;
    double steps = 0.0;
    for (const CellWindow& win : windows) {
      const DemRaster part = dem.copy_window(win);
      const BqCompressedRaster compressed =
          BqCompressedRaster::encode(part, tile);
      const ZonalResult r =
          pipeline.run(compressed, counties, &workspace);
      merged.add(r.per_polygon);
      times += r.times;
      ratio_sum += compressed.compression_ratio();
      steps += r.times.step_total();
    }
    std::printf("  %-14s %6lldx%-6lld  %2zu partitions  compressed to "
                "%5.1f%%  steps %.2fs\n",
                spec.name.c_str(), static_cast<long long>(dem.rows()),
                static_cast<long long>(dem.cols()), windows.size(),
                100.0 * ratio_sum / static_cast<double>(windows.size()),
                steps);
  }

  std::printf("\nend-to-end wall time: %.2f s (emulated device)\n",
              wall.seconds());
  for (std::size_t s = 0; s < StepTimes::kSteps; ++s) {
    std::printf("  %-52s %7.2f s\n", StepTimes::step_name(s).c_str(),
                times.seconds[s]);
  }

  // Top-5 zones by cell count, with classic zonal statistics.
  std::printf("\n%-10s %12s %7s %7s %9s %9s\n", "zone", "cells", "min",
              "max", "mean", "stddev");
  std::vector<PolygonId> order(counties.size());
  for (PolygonId i = 0; i < counties.size(); ++i) order[i] = i;
  std::partial_sort(order.begin(),
                    order.begin() + std::min<std::size_t>(5, order.size()),
                    order.end(), [&](PolygonId a, PolygonId b) {
                      return merged.group_total(a) > merged.group_total(b);
                    });
  for (std::size_t k = 0; k < std::min<std::size_t>(5, order.size()); ++k) {
    const PolygonId id = order[k];
    const ZonalStats s = stats_from_histogram(merged.of(id));
    std::printf("%-10s %12llu %7u %7u %9.1f %9.1f\n",
                counties.name(id).c_str(),
                static_cast<unsigned long long>(s.count), s.min, s.max,
                s.mean, s.stddev);
  }

  // Exactness spot check on the smallest raster: the pipeline must match
  // the per-cell reference bit for bit.
  const conus::RasterSpec& spec = conus::table1()[3];
  const DemRaster dem = conus::generate_raster(spec, scale);
  const ZonalResult check = pipeline.run(dem, counties);
  const HistogramSet expect = zonal_mbb_filter(dem, counties, bins);
  std::printf("\nexactness check vs per-cell PIP on %s: %s\n",
              spec.name.c_str(),
              check.per_polygon == expect ? "identical" : "MISMATCH");
  return check.per_polygon == expect ? 0 : 1;
}
