// Multi-node zonal histogramming: the Sec. IV.C experiment shape as a
// runnable example. Partitions the CONUS rasters per Table 1, runs the
// pipeline on N simulated ranks (each with its own virtual K20), merges
// per-polygon histograms at the master, and verifies that every rank
// count produces the identical result.
//
// Environment knobs: ZH_SCALE (default 90), ZH_ZONES (default 200),
// ZH_BINS (default 500).
#include <cstdio>
#include <cstdlib>

#include "zh.hpp"

namespace {
int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return (v != nullptr && *v != '\0') ? std::atoi(v) : fallback;
}
}  // namespace

int main() {
  using namespace zh;
  const int scale = env_int("ZH_SCALE", 90);
  const int zones = env_int("ZH_ZONES", 200);
  const auto bins = static_cast<BinIndex>(env_int("ZH_BINS", 500));
  const std::int64_t tile = conus::tile_size_cells(scale);

  std::printf("building the six CONUS rasters at 1/%d scale...\n", scale);
  std::vector<DemRaster> rasters;
  std::vector<std::pair<int, int>> schemas;
  for (const conus::RasterSpec& spec : conus::table1()) {
    rasters.push_back(conus::generate_raster(spec, scale));
    schemas.emplace_back(spec.part_rows, spec.part_cols);
  }
  const PolygonSet counties = conus::generate_county_layer(zones);
  std::printf("%zu rasters -> 36 partitions, %zu zones\n\n",
              rasters.size(), counties.size());

  HistogramSet reference;
  std::printf("%7s %10s %12s %14s %12s\n", "nodes", "wall (s)",
              "comm bytes", "PIP tests", "identical");
  for (const std::size_t ranks : {1u, 2u, 4u, 8u, 16u}) {
    ClusterRunConfig cfg;
    cfg.ranks = ranks;
    cfg.zonal = {.tile_size = tile, .bins = bins};
    const ClusterRunResult r =
        run_cluster_zonal(rasters, schemas, counties, cfg);

    bool same = true;
    if (reference.empty()) {
      reference = r.merged;
    } else {
      same = reference == r.merged;
    }
    std::printf("%7zu %10.2f %12llu %14llu %12s\n", ranks,
                r.wall_seconds,
                static_cast<unsigned long long>(r.comm_bytes),
                static_cast<unsigned long long>(r.work.pip_cell_tests),
                same ? "yes" : "NO");
    if (!same) return 1;
  }
  std::printf("\nevery rank count produced the identical merged "
              "histogram set.\n");
  return 0;
}
