// Zonal analysis of terrain derivatives: the classic "slope histogram
// per zone" workflow. A DEM is turned into slope-degree and
// aspect-sector layers; the same zonal pipeline histograms all three per
// zone; the zone layer round-trips through GeoJSON like a real dataset.
#include <cstdio>

#include "zh.hpp"

int main() {
  using namespace zh;

  const GeoTransform transform(-107.0, 43.0, 0.01, 0.01);
  const DemRaster dem = generate_dem(600, 800, transform, {.seed = 33});
  // Cells are 0.01 deg ~= 1.1 km; elevations in meters.
  const TerrainParams tp{.cell_distance = 1100.0};
  const Raster<CellValue> slope = slope_degrees(dem, tp);
  const Raster<CellValue> aspect = aspect_sectors(dem, tp);

  // Zones arrive as GeoJSON, as they would from any web GIS.
  CountyParams cp;
  cp.grid_x = 5;
  cp.grid_y = 4;
  const GeoBox ext = dem.extent();
  const PolygonSet made = generate_counties(
      GeoBox{ext.min_x - 0.05, ext.min_y - 0.05, ext.max_x + 0.05,
             ext.max_y + 0.05},
      cp);
  const PolygonSet zones = parse_geojson(to_geojson(made));

  Device device;
  // One shared Step-2 pairing for all three co-registered layers.
  std::vector<DemRaster> layers;
  layers.push_back(dem);
  layers.push_back(slope);
  layers.push_back(aspect);
  const SeriesResult series = run_series(
      device, layers, zones, {.tile_size = 50, .bins = 5000});
  const HistogramSet& elev_h = series.per_band[0];
  const HistogramSet& slope_h = series.per_band[1];
  const HistogramSet& aspect_h = series.per_band[2];

  std::printf("%-10s %9s %9s %11s %12s %10s\n", "zone", "mean elev",
              "mean slp", "steep >25d", "dominant", "aspect");
  static const char* kSectors[] = {"N", "NE", "E", "SE",
                                   "S", "SW", "W", "NW", "flat"};
  for (PolygonId z = 0; z < zones.size(); ++z) {
    const ZonalStats es = stats_from_histogram(elev_h.of(z));
    const ZonalStats ss = stats_from_histogram(slope_h.of(z));
    if (es.count == 0) continue;

    // Fraction of the zone steeper than 25 degrees.
    BinCount64 steep = 0;
    const auto srow = slope_h.of(z);
    for (BinIndex b = 26; b < srow.size(); ++b) steep += srow[b];

    // Dominant aspect sector.
    const auto arow = aspect_h.of(z);
    BinIndex dominant = 0;
    for (BinIndex b = 1; b <= 8; ++b) {
      if (arow[b] > arow[dominant]) dominant = b;
    }
    std::printf("%-10s %9.1f %9.1f %10.1f%% %12s\n",
                zones.name(z).c_str(), es.mean, ss.mean,
                100.0 * static_cast<double>(steep) /
                    static_cast<double>(es.count),
                kSectors[dominant]);
  }

  // Exactness spot check on the derived layer.
  const ZonalPipeline pipe(device, {.tile_size = 50, .bins = 5000});
  const ZonalResult direct = pipe.run(slope, zones);
  std::printf("\nslope-layer histograms identical to standalone run: %s\n",
              direct.per_polygon == slope_h ? "yes" : "NO");
  return direct.per_polygon == slope_h ? 0 : 1;
}
