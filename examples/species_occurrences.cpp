// Zonal summation of point events: the species-occurrence use case of
// the paper's companion study (ref [20]). Counts occurrence points and
// sums abundance weights per ecoregion-style zone, using the zonal tile
// grid as the spatial index -- most points aggregate bucket-wise without
// a single point-in-polygon test.
#include <cstdio>

#include "zh.hpp"

int main() {
  using namespace zh;

  // A 12x8-degree study area gridded at ~1 km; the tile grid doubles as
  // the point index.
  const GeoTransform transform(-96.0, 44.0, 0.01, 0.01);
  const TilingScheme tiling(800, 1200, 25);
  const GeoBox extent = transform.extent(800, 1200);

  // 500k clustered occurrence points with abundance weights.
  PointParams pp;
  pp.count = 500'000;
  pp.clusters = 9;
  pp.cluster_sigma = 0.04;
  const PointSet occurrences = generate_points(extent, pp);

  // 30 ecoregion-style zones tessellating the study area.
  CountyParams cp;
  cp.grid_x = 6;
  cp.grid_y = 5;
  const PolygonSet ecoregions = generate_counties(
      GeoBox{extent.min_x - 0.2, extent.min_y - 0.2, extent.max_x + 0.2,
             extent.max_y + 0.2},
      cp);

  Device device;
  PointZonalCounters counters;
  Timer timer;
  const auto rows = zonal_point_summation(device, occurrences, ecoregions,
                                          tiling, transform, &counters);
  const double seconds = timer.seconds();

  std::printf("%zu occurrences -> %zu zones in %.3f s\n",
              occurrences.size(), ecoregions.size(), seconds);
  std::printf("grid filter: %llu points bucket-aggregated, %llu PIP "
              "tests\n\n",
              static_cast<unsigned long long>(
                  counters.points_in_inside_tiles),
              static_cast<unsigned long long>(counters.pip_point_tests));

  std::printf("%-8s %10s %14s %12s\n", "zone", "count", "abundance",
              "mean weight");
  std::uint64_t total = 0;
  for (PolygonId z = 0; z < ecoregions.size(); ++z) {
    total += rows[z].count;
    if (rows[z].count == 0) continue;
    std::printf("%-8s %10llu %14.1f %12.2f\n",
                ecoregions.name(z).c_str(),
                static_cast<unsigned long long>(rows[z].count),
                rows[z].weight_sum,
                rows[z].weight_sum / static_cast<double>(rows[z].count));
  }
  std::printf("\ntotal attributed: %llu of %zu (points in no zone fall "
              "outside the tessellation edge)\n",
              static_cast<unsigned long long>(total), occurrences.size());

  // Cross-check against the PIP-everything reference.
  const auto reference =
      zonal_point_summation_reference(occurrences, ecoregions);
  for (PolygonId z = 0; z < ecoregions.size(); ++z) {
    if (rows[z].count != reference[z].count) {
      std::printf("MISMATCH in zone %u\n", z);
      return 1;
    }
  }
  std::printf("verified against reference: identical counts.\n");
  return 0;
}
