// Classic GIS zonal statistics from zonal histograms, plus the
// histogram-as-feature-vector analysis the paper's introduction
// motivates: per-zone elevation profiles, nearest-neighbour zones under
// L1 histogram distance, and CSV export of the full per-zone table.
//
// Also demonstrates the file formats: the raster round-trips through
// .zgrid and the zone layer through WKT TSV, as a real workflow would.
#include <cstdio>
#include <filesystem>

#include "zh.hpp"

int main() {
  using namespace zh;
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "zh_zonal_stats_example";
  std::filesystem::create_directories(dir);

  // Build a workload and persist it like a real dataset.
  const GeoTransform transform(-105.0, 42.0, 1.0 / 400, 1.0 / 400);
  const DemRaster dem = generate_dem(1600, 2000, transform, {.seed = 11});
  CountyParams cp;
  cp.grid_x = 6;
  cp.grid_y = 5;
  cp.hole_every = 7;
  const GeoBox ext = dem.extent();
  const PolygonSet zones = generate_counties(
      GeoBox{ext.min_x - 0.05, ext.min_y - 0.05, ext.max_x + 0.05,
             ext.max_y + 0.05},
      cp);

  const std::string raster_path = (dir / "terrain.zgrid").string();
  const std::string zones_path = (dir / "zones.tsv").string();
  write_zgrid(raster_path, dem);
  write_polygon_tsv(zones_path, zones);

  // A downstream user would start here: load, run, analyze.
  const DemRaster loaded = read_zgrid(raster_path);
  const PolygonSet loaded_zones = read_polygon_tsv(zones_path);
  std::printf("loaded %lldx%lld raster and %zu zones from %s\n\n",
              static_cast<long long>(loaded.rows()),
              static_cast<long long>(loaded.cols()), loaded_zones.size(),
              dir.string().c_str());

  Device device;
  const ZonalPipeline pipeline(device, {.tile_size = 100, .bins = 5000});
  const ZonalResult result = pipeline.run(loaded, loaded_zones);

  // The traditional zonal-statistics table.
  std::printf("%-8s %10s %6s %6s %8s %8s   %s\n", "zone", "cells", "min",
              "max", "mean", "stddev", "elevation profile");
  for (PolygonId id = 0; id < loaded_zones.size(); ++id) {
    const auto hist = result.per_polygon.of(id);
    const ZonalStats s = stats_from_histogram(hist);
    // Coarse 10-bucket sparkline of the zone's elevation distribution.
    std::string spark;
    BinCount max_bucket = 1;
    std::array<BinCount, 10> buckets{};
    for (BinIndex b = 0; b < hist.size(); ++b) {
      buckets[b * 10 / hist.size()] += hist[b];
    }
    for (const BinCount c : buckets) max_bucket = std::max(max_bucket, c);
    for (const BinCount c : buckets) {
      spark += " .:-=+*#%@"[c * 9 / max_bucket];
    }
    std::printf("%-8s %10llu %6u %6u %8.1f %8.1f   [%s]\n",
                loaded_zones.name(id).c_str(),
                static_cast<unsigned long long>(s.count), s.min, s.max,
                s.mean, s.stddev, spark.c_str());
  }

  // Histograms as feature vectors: most-similar zone pairs under L1.
  std::printf("\nmost similar zone pairs (L1 histogram distance):\n");
  struct Pair {
    PolygonId a, b;
    std::uint64_t d;
  };
  std::vector<Pair> pairs;
  for (PolygonId a = 0; a < loaded_zones.size(); ++a) {
    for (PolygonId b = a + 1; b < loaded_zones.size(); ++b) {
      pairs.push_back({a, b,
                       histogram_l1_distance(result.per_polygon.of(a),
                                             result.per_polygon.of(b))});
    }
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const Pair& x, const Pair& y) { return x.d < y.d; });
  for (std::size_t k = 0; k < std::min<std::size_t>(3, pairs.size()); ++k) {
    std::printf("  %s ~ %s  (distance %llu)\n",
                loaded_zones.name(pairs[k].a).c_str(),
                loaded_zones.name(pairs[k].b).c_str(),
                static_cast<unsigned long long>(pairs[k].d));
  }

  // Export the full table as CSV for spreadsheet/GIS consumption.
  const std::string csv_path = (dir / "zonal_stats.csv").string();
  {
    std::FILE* f = std::fopen(csv_path.c_str(), "w");
    ZH_REQUIRE_IO(f != nullptr, "cannot write ", csv_path);
    std::fprintf(f, "zone,cells,min,max,mean,stddev\n");
    for (PolygonId id = 0; id < loaded_zones.size(); ++id) {
      const ZonalStats s =
          stats_from_histogram(result.per_polygon.of(id));
      std::fprintf(f, "%s,%llu,%u,%u,%.3f,%.3f\n",
                   loaded_zones.name(id).c_str(),
                   static_cast<unsigned long long>(s.count), s.min, s.max,
                   s.mean, s.stddev);
    }
    std::fclose(f);
  }
  std::printf("\nwrote %s\n", csv_path.c_str());
  return 0;
}
