// Multi-band zonal analysis: per-zone histograms of a 16-band image
// stack (GOES-R-style), then zone clustering on the concatenated
// band-histogram feature vectors -- the "histograms as feature vectors
// for subsequent clustering" workflow of the paper's introduction.
#include <cstdio>

#include "zh.hpp"

int main() {
  using namespace zh;

  // A 16-band synthetic stack over one scene; each band is a different
  // noise seed (different spectral response).
  const GeoTransform transform(-98.0, 41.0, 0.01, 0.01);
  constexpr int kBands = 16;
  std::vector<DemRaster> bands;
  bands.reserve(kBands);
  for (int b = 0; b < kBands; ++b) {
    // Band values span exactly the histogram's 512 bins (radiance-like
    // 9-bit quantization), so histograms resolve real per-band shape.
    bands.push_back(generate_dem(
        400, 600, transform,
        {.seed = 7000 + static_cast<std::uint64_t>(b), .octaves = 4,
         .max_value = 511}));
  }

  CountyParams cp;
  cp.grid_x = 6;
  cp.grid_y = 4;
  const GeoBox ext = bands[0].extent();
  const PolygonSet zones = generate_counties(
      GeoBox{ext.min_x - 0.05, ext.min_y - 0.05, ext.max_x + 0.05,
             ext.max_y + 0.05},
      cp);

  Device device;
  Timer timer;
  const SeriesResult series = run_series(
      device, bands, zones, {.tile_size = 50, .bins = 512});
  std::printf("%d bands x %zu zones histogrammed in %.2f s "
              "(spatial filter ran once: %.3f s)\n\n",
              kBands, zones.size(), timer.seconds(),
              series.times.seconds[2]);

  // Per-zone spectral summary: mean of each band.
  std::printf("%-6s", "zone");
  for (int b = 0; b < 6; ++b) std::printf("  b%02d-mean", b);
  std::printf("  ...\n");
  for (PolygonId z = 0; z < std::min<std::size_t>(8, zones.size()); ++z) {
    std::printf("%-6s", zones.name(z).c_str());
    for (int b = 0; b < 6; ++b) {
      const ZonalStats s = stats_from_histogram(
          series.per_band[static_cast<std::size_t>(b)].of(z));
      std::printf("  %8.1f", s.mean);
    }
    std::printf("\n");
  }

  // Concatenate the per-band histograms into one feature vector per zone
  // and cluster zones into spectral classes.
  const BinIndex bins = series.per_band[0].bins();
  HistogramSet features(zones.size(),
                        static_cast<BinIndex>(bins * kBands));
  for (int b = 0; b < kBands; ++b) {
    for (std::size_t z = 0; z < zones.size(); ++z) {
      const auto src = series.per_band[static_cast<std::size_t>(b)].of(z);
      auto dst = features.of(z).subspan(
          static_cast<std::size_t>(b) * bins, bins);
      std::copy(src.begin(), src.end(), dst.begin());
    }
  }
  const ZoneClustering clusters = cluster_zones(features, {.k = 4});
  std::printf("\nzones clustered into 4 spectral classes "
              "(k-medoids on L1 histogram distance, %d iterations):\n",
              clusters.iterations);
  for (std::uint32_t c = 0; c < 4; ++c) {
    std::printf("  class %u (medoid %s):", c,
                zones.name(clusters.medoids[c]).c_str());
    for (std::size_t z = 0; z < zones.size(); ++z) {
      if (clusters.assignment[z] == c) {
        std::printf(" %s", zones.name(static_cast<PolygonId>(z)).c_str());
      }
    }
    std::printf("\n");
  }
  return 0;
}
